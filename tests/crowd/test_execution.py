"""Tests for end-to-end plan execution on the simulated platform."""

import pytest

from repro.algorithms.opq import OPQSolver
from repro.core.problem import SladeProblem
from repro.crowd.execution import PlanExecutor
from repro.crowd.presets import jelly_platform
from repro.datasets.jelly import jelly_bin_set
from repro.datasets.workloads import make_workload


class TestPlanExecutor:
    @pytest.fixture(scope="class")
    def executed(self):
        """Solve and execute a small Jelly workload once for the class."""
        bins = jelly_bin_set(8)
        task = make_workload(n=120, threshold=0.9, positive_rate=0.5, seed=3)
        problem = SladeProblem(task, bins, name="execution-test")
        plan = OPQSolver().solve(problem).plan
        platform = jelly_platform(seed=3)
        report = PlanExecutor(platform).execute(plan, task)
        return plan, report

    def test_realised_spend_close_to_planned_cost(self, executed):
        plan, report = executed
        assert report.planned_cost == pytest.approx(plan.total_cost)
        # Workers that miss the deadline are unpaid, so realised <= planned;
        # with single-assignment postings almost everything completes in time.
        assert report.realised_spend <= report.planned_cost + 1e-9
        assert report.realised_spend >= 0.5 * report.planned_cost

    def test_postings_match_plan_length(self, executed):
        plan, report = executed
        assert report.postings == len(plan)

    def test_detection_rate_close_to_planned_reliability(self, executed):
        _plan, report = executed
        # The plan targets 0.9 reliability; the empirical detection rate over
        # 60 positives should be in the same ballpark (binomial noise allowed).
        assert report.detection_rate >= 0.80
        assert report.false_negative_rate <= 0.20

    def test_every_task_received_a_decision(self, executed):
        _plan, report = executed
        assert len(report.decisions) == 120

    def test_summary_contains_headline_numbers(self, executed):
        _plan, report = executed
        summary = report.summary()
        assert {"planned_cost", "realised_spend", "detection_rate"} <= set(summary)

    def test_mean_planned_reliability_at_least_threshold(self, executed):
        _plan, report = executed
        assert report.mean_planned_reliability >= 0.9 - 1e-9


class TestExecutionFeedsMonitor:
    def test_executed_plans_double_as_probes(self):
        from repro.crowd.monitoring import QualityMonitor

        bins = jelly_bin_set(8)
        task = make_workload(n=80, threshold=0.9, positive_rate=0.5, seed=5)
        problem = SladeProblem(task, bins, name="monitored-execution")
        plan = OPQSolver().solve(problem).plan
        monitor = QualityMonitor(bins, min_observations=1)
        PlanExecutor(jelly_platform(seed=5), monitor=monitor).execute(plan, task)
        observed = [
            report for report in monitor.reports() if report.observations > 0
        ]
        assert observed, "execution produced no monitor observations"
        # Every observation belongs to a cardinality the plan actually used.
        plan_cardinalities = {a.task_bin.cardinality for a in plan}
        assert {report.cardinality for report in observed} <= plan_cardinalities

    def test_monitorless_executor_unchanged(self):
        bins = jelly_bin_set(8)
        task = make_workload(n=40, threshold=0.9, positive_rate=0.5, seed=7)
        plan = OPQSolver().solve(SladeProblem(task, bins)).plan
        report = PlanExecutor(jelly_platform(seed=7)).execute(plan, task)
        assert report.postings == len(plan)
