"""Tests for simulated workers and worker pools."""

import pytest

from repro.core.bins import TaskBin
from repro.crowd.accuracy import CognitiveLoadAccuracyModel
from repro.crowd.worker import SimulatedWorker, WorkerPool
from repro.utils.rng import ensure_rng


class TestSimulatedWorker:
    def test_perfectly_skilled_worker_on_tiny_bin_is_mostly_correct(self):
        worker = SimulatedWorker(0, 0.99, ensure_rng(1))
        model = CognitiveLoadAccuracyModel()
        truths = {i: (i % 2 == 0) for i in range(4)}
        correct = 0
        trials = 200
        for _ in range(trials):
            answers = worker.answer_bin(TaskBin(4, 0.9, 0.1), truths, model)
            correct += sum(answers[i] == truths[i] for i in truths)
        assert correct / (trials * len(truths)) > 0.9

    def test_answers_cover_every_task(self):
        worker = SimulatedWorker(0, 0.9, ensure_rng(0))
        truths = {7: True, 9: False, 11: True}
        answers = worker.answer_bin(TaskBin(3, 0.8, 0.1), truths, CognitiveLoadAccuracyModel())
        assert set(answers) == {7, 9, 11}

    def test_accuracy_drops_for_large_bins(self):
        worker = SimulatedWorker(0, 0.95, ensure_rng(3))
        model = CognitiveLoadAccuracyModel(floor_accuracy=0.6, decay=0.2)
        truths_small = {i: True for i in range(2)}
        truths_large = {i: True for i in range(30)}
        trials = 300

        def rate(truths, cardinality):
            correct = 0
            for _ in range(trials):
                answers = worker.answer_bin(TaskBin(cardinality, 0.5, 0.1), truths, model)
                correct += sum(answers[i] == truths[i] for i in truths)
            return correct / (trials * len(truths))

        assert rate(truths_large, 30) < rate(truths_small, 2)

    def test_invalid_skill_rejected(self):
        with pytest.raises(ValueError):
            SimulatedWorker(0, 1.5, ensure_rng(0))


class TestWorkerPool:
    def test_pool_size(self):
        assert len(WorkerPool(size=25, seed=0)) == 25

    def test_mean_skill_close_to_requested(self):
        pool = WorkerPool(size=500, mean_skill=0.9, skill_std=0.03, seed=0)
        assert pool.mean_skill == pytest.approx(0.9, abs=0.02)

    def test_skills_are_clipped_to_valid_range(self):
        pool = WorkerPool(size=200, mean_skill=0.99, skill_std=0.2, seed=1)
        assert all(0.5 <= worker.skill <= 0.995 for worker in pool)

    def test_sample_worker_returns_pool_member(self):
        pool = WorkerPool(size=10, seed=2)
        workers = set(id(w) for w in pool.workers)
        assert id(pool.sample_worker()) in workers

    def test_deterministic_for_seed(self):
        first = [w.skill for w in WorkerPool(size=10, seed=5)]
        second = [w.skill for w in WorkerPool(size=10, seed=5)]
        assert first == second

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(size=0)
