"""Tests for the simulated crowdsourcing platform."""

import pytest

from repro.core.bins import TaskBin
from repro.core.errors import SimulationError
from repro.crowd.arrival import RewardSensitiveArrivalModel
from repro.crowd.platform import CrowdPlatform
from repro.crowd.worker import WorkerPool


@pytest.fixture
def platform() -> CrowdPlatform:
    return CrowdPlatform(
        worker_pool=WorkerPool(size=50, mean_skill=0.9, seed=0),
        response_time_minutes=40.0,
        seed=0,
    )


class TestPosting:
    def test_posting_collects_requested_assignments(self, platform):
        posting = platform.post_bin(TaskBin(2, 0.9, 0.1), {0: True, 1: False}, assignments=5)
        assert len(posting.responses) == 5

    def test_each_response_answers_every_task(self, platform):
        posting = platform.post_bin(TaskBin(3, 0.9, 0.1), {0: True, 1: False, 2: True})
        for response in posting.responses:
            assert set(response.answers) == {0, 1, 2}

    def test_cost_charged_per_in_time_response(self, platform):
        posting = platform.post_bin(TaskBin(1, 0.9, 0.25), {0: True}, assignments=4)
        assert posting.cost == pytest.approx(0.25 * len(posting.in_time_responses))

    def test_overfull_posting_rejected(self, platform):
        with pytest.raises(SimulationError):
            platform.post_bin(TaskBin(1, 0.9, 0.1), {0: True, 1: False})

    def test_empty_posting_rejected(self, platform):
        with pytest.raises(SimulationError):
            platform.post_bin(TaskBin(1, 0.9, 0.1), {})

    def test_zero_assignments_rejected(self, platform):
        with pytest.raises(SimulationError):
            platform.post_bin(TaskBin(1, 0.9, 0.1), {0: True}, assignments=0)


class TestAccounting:
    def test_total_spend_accumulates(self, platform):
        platform.post_bin(TaskBin(1, 0.9, 0.1), {0: True})
        platform.post_bin(TaskBin(1, 0.9, 0.1), {1: True})
        assert platform.total_postings == 2
        assert platform.total_spend > 0.0

    def test_reset_clears_postings(self, platform):
        platform.post_bin(TaskBin(1, 0.9, 0.1), {0: True})
        platform.reset()
        assert platform.total_postings == 0
        assert platform.total_spend == 0.0

    def test_all_responses_flattens_postings(self, platform):
        platform.post_bin(TaskBin(1, 0.9, 0.1), {0: True}, assignments=2)
        platform.post_bin(TaskBin(1, 0.9, 0.1), {1: True}, assignments=3)
        assert len(platform.all_responses()) == 5


class TestTimeoutBehaviour:
    def test_low_reward_large_bins_time_out(self):
        # A very low reward draws almost no workers; most of the 10 requested
        # assignments exceed the 40-minute threshold for large bins.
        platform = CrowdPlatform(
            worker_pool=WorkerPool(size=50, seed=1),
            arrival_model=RewardSensitiveArrivalModel(
                base_rate_per_minute=0.39, reference_cost=0.05,
                elasticity=1.4, minutes_per_question=1.0,
            ),
            response_time_minutes=40.0,
            seed=1,
        )
        truths = {i: True for i in range(25)}
        posting = platform.post_bin(TaskBin(25, 0.8, 0.02), truths, assignments=10)
        assert len(posting.in_time_responses) < 10

    def test_generous_reward_finishes_in_time(self):
        platform = CrowdPlatform(
            worker_pool=WorkerPool(size=50, seed=2),
            arrival_model=RewardSensitiveArrivalModel(
                base_rate_per_minute=0.39, reference_cost=0.05,
                elasticity=1.4, minutes_per_question=1.0,
            ),
            response_time_minutes=40.0,
            seed=2,
        )
        posting = platform.post_bin(TaskBin(2, 0.9, 0.5), {0: True, 1: False}, assignments=10)
        assert len(posting.in_time_responses) == 10

    def test_invalid_response_time_rejected(self):
        with pytest.raises(SimulationError):
            CrowdPlatform(response_time_minutes=0.0)
