"""Tests for worker answers and answer aggregation."""

import pytest

from repro.core.errors import SimulationError
from repro.crowd.responses import AnswerAggregator, BinResponse, WorkerAnswer


def _response(posting_id, answers, in_time=True, worker_id=0):
    return BinResponse(
        posting_id=posting_id,
        worker_id=worker_id,
        cardinality=len(answers),
        answers=answers,
        completed_at_minutes=5.0,
        in_time=in_time,
    )


class TestBinResponse:
    def test_iter_answers_yields_worker_answers(self):
        response = _response(0, {1: True, 2: False}, worker_id=9)
        answers = list(response.iter_answers())
        assert WorkerAnswer(1, 9, True) in answers
        assert WorkerAnswer(2, 9, False) in answers


class TestAnswerAggregatorAnyYes:
    def test_any_yes_decision(self):
        aggregator = AnswerAggregator("any-yes")
        responses = [_response(0, {1: False}), _response(1, {1: True})]
        assert aggregator.decisions(responses) == {1: True}

    def test_all_no_decision(self):
        aggregator = AnswerAggregator("any-yes")
        responses = [_response(0, {1: False}), _response(1, {1: False})]
        assert aggregator.decisions(responses) == {1: False}

    def test_overtime_responses_ignored(self):
        aggregator = AnswerAggregator("any-yes")
        responses = [_response(0, {1: True}, in_time=False)]
        assert aggregator.decisions(responses) == {}

    def test_unknown_rule_rejected(self):
        with pytest.raises(SimulationError):
            AnswerAggregator("unanimous")


class TestAnswerAggregatorMajority:
    def test_majority_requires_strict_majority(self):
        aggregator = AnswerAggregator("majority")
        responses = [
            _response(0, {1: True}),
            _response(1, {1: False}),
            _response(2, {1: False}),
        ]
        assert aggregator.decisions(responses) == {1: False}

    def test_majority_positive(self):
        aggregator = AnswerAggregator("majority")
        responses = [
            _response(0, {1: True}),
            _response(1, {1: True}),
            _response(2, {1: False}),
        ]
        assert aggregator.decisions(responses) == {1: True}


class TestEmpiricalReliability:
    def test_detected_positive_counts_as_reliable(self):
        aggregator = AnswerAggregator()
        responses = [_response(0, {1: True})]
        reliability = aggregator.empirical_reliability(responses, {1: True})
        assert reliability[1] == 1.0

    def test_missed_positive_counts_as_unreliable(self):
        aggregator = AnswerAggregator()
        responses = [_response(0, {1: False})]
        reliability = aggregator.empirical_reliability(responses, {1: True})
        assert reliability[1] == 0.0

    def test_negative_with_answers_is_reliable(self):
        aggregator = AnswerAggregator()
        responses = [_response(0, {1: True})]  # false positive is fine
        reliability = aggregator.empirical_reliability(responses, {1: False})
        assert reliability[1] == 1.0

    def test_unanswered_task_is_unreliable(self):
        aggregator = AnswerAggregator()
        reliability = aggregator.empirical_reliability([], {1: True, 2: False})
        assert reliability == {1: 0.0, 2: 0.0}


class TestFalseNegativeRate:
    def test_no_positives_gives_zero(self):
        aggregator = AnswerAggregator()
        assert aggregator.false_negative_rate([], {1: False}) == 0.0

    def test_all_positives_missed(self):
        aggregator = AnswerAggregator()
        responses = [_response(0, {1: False}), _response(1, {2: False})]
        assert aggregator.false_negative_rate(responses, {1: True, 2: True}) == 1.0

    def test_half_positives_missed(self):
        aggregator = AnswerAggregator()
        responses = [_response(0, {1: True}), _response(1, {2: False})]
        assert aggregator.false_negative_rate(responses, {1: True, 2: True}) == 0.5
