"""Tests for probe-based calibration."""

import pytest

from repro.core.errors import CalibrationError
from repro.crowd.calibration import CalibrationResult, ProbeCalibrator, ProbeMeasurement
from repro.crowd.presets import jelly_platform


@pytest.fixture(scope="module")
def calibration() -> CalibrationResult:
    platform = jelly_platform(seed=11)
    calibrator = ProbeCalibrator(
        platform,
        candidate_costs=(0.05, 0.08, 0.10),
        assignments_per_probe=10,
        probes_per_cardinality=2,
        seed=11,
    )
    return calibrator.calibrate([1, 2, 4, 8, 12])


class TestProbeCalibrator:
    def test_measurements_cover_every_pair(self, calibration):
        assert set(calibration.measurements) == {
            (l, c) for l in (1, 2, 4, 8, 12) for c in (0.05, 0.08, 0.10)
        }

    def test_selected_picks_cheapest_usable(self, calibration):
        for cardinality, measurement in calibration.selected.items():
            cheaper = [
                calibration.measurements[(cardinality, cost)]
                for cost in (0.05, 0.08, 0.10)
                if cost < measurement.cost
            ]
            assert all(not m.usable for m in cheaper)

    def test_confidence_estimates_are_probabilities(self, calibration):
        for measurement in calibration.measurements.values():
            if measurement.confidence is not None:
                assert 0.0 <= measurement.confidence <= 1.0

    def test_small_bins_have_high_confidence(self, calibration):
        small = calibration.selected[1].confidence
        assert small > 0.9

    def test_probe_spend_positive(self, calibration):
        assert calibration.probe_spend > 0.0

    def test_bin_set_built_from_selection(self, calibration):
        bins = calibration.bin_set(name="jelly-probe")
        assert set(bins.cardinalities) == set(calibration.selected)
        for task_bin in bins:
            assert 0.0 < task_bin.confidence < 1.0

    def test_confidence_series_returns_one_price(self, calibration):
        series = calibration.confidence_series(0.10)
        assert set(series).issubset({1, 2, 4, 8, 12})


class TestCalibrationValidation:
    def test_empty_costs_rejected(self):
        with pytest.raises(CalibrationError):
            ProbeCalibrator(jelly_platform(seed=0), candidate_costs=())

    def test_empty_cardinalities_rejected(self):
        calibrator = ProbeCalibrator(jelly_platform(seed=0), candidate_costs=(0.1,))
        with pytest.raises(CalibrationError):
            calibrator.calibrate([])

    def test_empty_selection_bin_set_rejected(self):
        result = CalibrationResult(measurements={}, selected={}, probe_spend=0.0)
        with pytest.raises(CalibrationError):
            result.bin_set()

    def test_unusable_measurement_flag(self):
        measurement = ProbeMeasurement(
            cardinality=5, cost=0.05, confidence=None, in_time_fraction=0.0,
            answers_collected=0,
        )
        assert not measurement.usable


class TestRepeatedCalibration:
    def test_probe_ids_never_reused_across_runs(self):
        platform = jelly_platform(seed=3)
        calibrator = ProbeCalibrator(
            platform,
            candidate_costs=(0.10,),
            assignments_per_probe=5,
            probes_per_cardinality=2,
            seed=3,
        )
        posted_ids = []
        original_post = platform.post_bin

        def spying_post(task_bin, truths, assignments):
            posted_ids.append(frozenset(truths))
            return original_post(task_bin, truths, assignments)

        platform.post_bin = spying_post  # type: ignore[method-assign]
        try:
            calibrator.calibrate([1, 2])
            calibrator.calibrate([1, 2])
        finally:
            platform.post_bin = original_post  # type: ignore[method-assign]

        all_ids = [task_id for ids in posted_ids for task_id in ids]
        assert all(task_id < 0 for task_id in all_ids)
        # Each posting draws fresh ids: a second calibrate() run against the
        # same platform must not collide with the first run's probes.
        assert len(all_ids) == len(set(all_ids))
