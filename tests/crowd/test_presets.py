"""Tests for the Jelly/SMIC platform presets."""

import pytest

from repro.crowd.presets import jelly_platform, smic_platform


class TestJellyPlatform:
    def test_response_time_threshold(self):
        assert jelly_platform(seed=0).response_time_minutes == 40.0

    def test_workers_are_skilled(self):
        platform = jelly_platform(seed=0)
        assert platform.worker_pool.mean_skill > 0.95

    def test_difficulty_changes_accuracy_decay(self):
        easy = jelly_platform(difficulty=1, seed=0).accuracy_model
        hard = jelly_platform(difficulty=3, seed=0).accuracy_model
        assert hard.difficulty_scale > easy.difficulty_scale

    def test_invalid_difficulty_rejected(self):
        with pytest.raises(ValueError):
            jelly_platform(difficulty=4)

    def test_deterministic_given_seed(self):
        a = jelly_platform(seed=5).worker_pool.mean_skill
        b = jelly_platform(seed=5).worker_pool.mean_skill
        assert a == pytest.approx(b)


class TestSmicPlatform:
    def test_response_time_threshold(self):
        assert smic_platform(seed=0).response_time_minutes == 30.0

    def test_smic_workers_less_accurate_than_jelly(self):
        smic = smic_platform(seed=0).worker_pool.mean_skill
        jelly = jelly_platform(seed=0).worker_pool.mean_skill
        assert smic < jelly
