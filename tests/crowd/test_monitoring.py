"""Tests for the quality-drift monitor."""

import pytest

from repro.core.bins import TaskBinSet
from repro.core.errors import SimulationError
from repro.crowd.monitoring import QualityMonitor


@pytest.fixture
def bins() -> TaskBinSet:
    return TaskBinSet.from_triples(
        [(1, 0.9, 0.10), (2, 0.85, 0.18), (3, 0.8, 0.24)], name="monitored"
    )


def _feed(monitor: QualityMonitor, cardinality: int, accuracy: float, count: int) -> None:
    """Feed ``count`` observations with an exact fraction of correct answers."""
    correct = int(round(accuracy * count))
    monitor.record_many((cardinality, True) for _ in range(correct))
    monitor.record_many((cardinality, False) for _ in range(count - correct))


class TestRecording:
    def test_unknown_cardinality_rejected(self, bins):
        monitor = QualityMonitor(bins)
        with pytest.raises(SimulationError):
            monitor.record(9, True)

    def test_accuracy_requires_min_observations(self, bins):
        monitor = QualityMonitor(bins, min_observations=10)
        _feed(monitor, 1, 1.0, 5)
        assert monitor.observed_accuracy(1) is None
        _feed(monitor, 1, 1.0, 5)
        assert monitor.observed_accuracy(1) == pytest.approx(1.0)

    def test_window_forgets_old_answers(self, bins):
        monitor = QualityMonitor(bins, window=20, min_observations=10)
        _feed(monitor, 2, 0.0, 20)   # ancient, terrible accuracy
        _feed(monitor, 2, 1.0, 20)   # recent, perfect accuracy
        assert monitor.observed_accuracy(2) == pytest.approx(1.0)

    def test_invalid_configuration_rejected(self, bins):
        with pytest.raises(SimulationError):
            QualityMonitor(bins, window=0)
        with pytest.raises(SimulationError):
            QualityMonitor(bins, min_observations=50, window=10)
        with pytest.raises(SimulationError):
            QualityMonitor(bins, tolerance=0.0)


class TestDriftDetection:
    def test_no_drift_when_accuracy_matches_assumption(self, bins):
        monitor = QualityMonitor(bins, min_observations=20, tolerance=0.05)
        _feed(monitor, 1, 0.9, 100)
        report = monitor.report(1)
        assert not report.drifted
        assert report.shortfall == pytest.approx(0.0, abs=0.02)
        assert not monitor.needs_recalibration

    def test_drift_flagged_when_accuracy_collapses(self, bins):
        monitor = QualityMonitor(bins, min_observations=20, tolerance=0.05)
        _feed(monitor, 2, 0.6, 100)  # assumed 0.85
        assert monitor.report(2).drifted
        assert monitor.drifted_cardinalities() == [2]
        assert monitor.needs_recalibration

    def test_small_shortfall_within_tolerance_not_flagged(self, bins):
        monitor = QualityMonitor(bins, min_observations=20, tolerance=0.10)
        _feed(monitor, 3, 0.75, 100)  # assumed 0.80, shortfall 0.05 < 0.10
        assert not monitor.report(3).drifted

    def test_insufficient_data_never_flags(self, bins):
        monitor = QualityMonitor(bins, min_observations=50, tolerance=0.05)
        _feed(monitor, 1, 0.1, 10)
        assert not monitor.report(1).drifted

    def test_reports_cover_every_cardinality(self, bins):
        monitor = QualityMonitor(bins)
        assert [r.cardinality for r in monitor.reports()] == [1, 2, 3]


class TestCorrectedMenu:
    def test_corrected_menu_uses_observed_accuracy(self, bins):
        monitor = QualityMonitor(bins, min_observations=20)
        _feed(monitor, 2, 0.7, 100)
        corrected = monitor.corrected_bin_set()
        assert corrected[2].confidence == pytest.approx(0.7)
        # Unobserved cardinalities keep their assumed confidence and cost.
        assert corrected[1].confidence == pytest.approx(0.9)
        assert corrected[3].cost == pytest.approx(0.24)

    def test_corrected_menu_feeds_back_into_a_solver(self, bins):
        from repro.algorithms.opq import OPQSolver
        from repro.core.problem import SladeProblem

        monitor = QualityMonitor(bins, min_observations=20)
        _feed(monitor, 3, 0.6, 100)
        corrected = monitor.corrected_bin_set()
        problem = SladeProblem.homogeneous(30, 0.95, corrected)
        result = OPQSolver().solve(problem)
        assert result.feasible
        # The degraded 3-bin makes plans more expensive than on the stale menu.
        stale = OPQSolver().solve(SladeProblem.homogeneous(30, 0.95, bins))
        assert result.total_cost >= stale.total_cost - 1e-9

    def test_perfect_accuracy_is_clamped_below_one(self, bins):
        monitor = QualityMonitor(bins, min_observations=10)
        _feed(monitor, 1, 1.0, 50)
        corrected = monitor.corrected_bin_set()
        assert corrected[1].confidence < 1.0


class TestTwoSidedDrift:
    def test_upward_drift_flagged(self, bins):
        monitor = QualityMonitor(bins, min_observations=20, tolerance=0.05)
        _feed(monitor, 3, 0.95, 100)  # assumed 0.80 — workers far better
        assert monitor.report(3).drifted
        assert monitor.needs_recalibration

    def test_shortfall_is_signed(self, bins):
        monitor = QualityMonitor(bins, min_observations=20, tolerance=0.05)
        _feed(monitor, 2, 0.6, 100)   # below assumed 0.85
        _feed(monitor, 3, 0.95, 100)  # above assumed 0.80
        assert monitor.report(2).shortfall == pytest.approx(0.25)
        assert monitor.report(3).shortfall == pytest.approx(-0.15)

    def test_shortfall_zero_without_data(self, bins):
        monitor = QualityMonitor(bins, min_observations=50)
        assert monitor.report(1).shortfall == 0.0

    def test_asymmetric_tolerance_band(self, bins):
        monitor = QualityMonitor(
            bins, min_observations=20, tolerance=0.05, tolerance_above=0.20
        )
        _feed(monitor, 3, 0.95, 100)  # +0.15 over assumed: inside the wide band
        assert not monitor.report(3).drifted
        _feed(monitor, 2, 0.75, 100)  # -0.10 under assumed: outside the tight band
        assert monitor.report(2).drifted
        assert monitor.drifted_cardinalities() == [2]

    def test_tolerance_above_defaults_to_tolerance(self, bins):
        monitor = QualityMonitor(bins, tolerance=0.07)
        assert monitor.tolerance_above == pytest.approx(0.07)

    def test_invalid_tolerance_above_rejected(self, bins):
        with pytest.raises(SimulationError):
            QualityMonitor(bins, tolerance_above=0.0)
        with pytest.raises(SimulationError):
            QualityMonitor(bins, tolerance_above=1.0)

    def test_boundary_accuracy_is_not_drift(self, bins):
        # Exactly on the band edge stays calm in both directions.
        monitor = QualityMonitor(bins, min_observations=20, tolerance=0.05)
        _feed(monitor, 1, 0.85, 100)  # assumed 0.90, exactly -tolerance
        assert not monitor.report(1).drifted
        _feed(monitor, 3, 0.85, 100)  # assumed 0.80, exactly +tolerance_above
        assert not monitor.report(3).drifted


class TestCorrectedMenuEpoch:
    def test_corrected_menu_bumps_epoch(self, bins):
        monitor = QualityMonitor(bins, min_observations=20)
        _feed(monitor, 2, 0.7, 100)
        corrected = monitor.corrected_bin_set()
        assert corrected.calibration_epoch == bins.calibration_epoch + 1
        assert corrected.fingerprint != bins.fingerprint

    def test_epoch_chain_through_repeated_recalibration(self, bins):
        first = QualityMonitor(bins, min_observations=10)
        _feed(first, 2, 0.7, 50)
        generation_one = first.corrected_bin_set()
        second = QualityMonitor(generation_one, min_observations=10)
        _feed(second, 2, 0.7, 50)
        generation_two = second.corrected_bin_set()
        assert generation_one.calibration_epoch == 1
        assert generation_two.calibration_epoch == 2
        # Identical confidences across generations still re-key the cache.
        assert generation_two.fingerprint != generation_one.fingerprint
