"""Tests for the cognitive-load accuracy model."""

import pytest
from hypothesis import given, strategies as st

from repro.crowd.accuracy import CognitiveLoadAccuracyModel


class TestCognitiveLoadAccuracyModel:
    def test_single_question_accuracy_equals_skill(self):
        model = CognitiveLoadAccuracyModel()
        assert model.accuracy(0.92, 1) == pytest.approx(0.92)

    def test_accuracy_decreases_with_cardinality(self):
        model = CognitiveLoadAccuracyModel()
        values = [model.accuracy(0.95, l) for l in range(1, 31)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_accuracy_never_below_floor(self):
        model = CognitiveLoadAccuracyModel(floor_accuracy=0.75)
        assert model.accuracy(0.95, 500) >= 0.75

    def test_skill_below_floor_is_not_raised(self):
        # A weak worker stays at their own skill level; batching never helps.
        model = CognitiveLoadAccuracyModel(floor_accuracy=0.8)
        assert model.accuracy(0.7, 10) == pytest.approx(0.7)

    def test_difficulty_scale_accelerates_decay(self):
        easy = CognitiveLoadAccuracyModel(difficulty_scale=0.7)
        hard = CognitiveLoadAccuracyModel(difficulty_scale=1.4)
        assert hard.accuracy(0.95, 15) < easy.accuracy(0.95, 15)

    def test_invalid_cardinality_rejected(self):
        with pytest.raises(ValueError):
            CognitiveLoadAccuracyModel().accuracy(0.9, 0)

    def test_floor_below_half_rejected(self):
        with pytest.raises(ValueError):
            CognitiveLoadAccuracyModel(floor_accuracy=0.4)

    def test_expected_confidence_matches_accuracy(self):
        model = CognitiveLoadAccuracyModel()
        assert model.expected_confidence(0.9, 5) == model.accuracy(0.9, 5)

    @given(
        st.floats(min_value=0.5, max_value=0.99),
        st.integers(min_value=1, max_value=60),
    )
    def test_accuracy_is_a_probability(self, skill, cardinality):
        model = CognitiveLoadAccuracyModel()
        value = model.accuracy(skill, cardinality)
        assert 0.5 <= value <= 1.0
