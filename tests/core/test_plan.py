"""Tests for decomposition plans."""

import pytest

from repro.core.errors import InfeasiblePlanError, InvalidBinError
from repro.core.plan import BinAssignment, DecompositionPlan
from repro.core.task import CrowdsourcingTask


class TestBinAssignment:
    def test_basic_construction(self, table1_bins):
        assignment = BinAssignment(table1_bins[2], (0, 1))
        assert assignment.cost == 0.18
        assert assignment.fill_ratio == 1.0

    def test_partial_fill_allowed(self, table1_bins):
        assignment = BinAssignment(table1_bins[3], (5,))
        assert assignment.fill_ratio == pytest.approx(1 / 3)

    def test_overfull_rejected(self, table1_bins):
        with pytest.raises(InvalidBinError):
            BinAssignment(table1_bins[2], (0, 1, 2))

    def test_duplicate_tasks_rejected(self, table1_bins):
        with pytest.raises(InvalidBinError):
            BinAssignment(table1_bins[2], (0, 0))

    def test_empty_rejected(self, table1_bins):
        with pytest.raises(InvalidBinError):
            BinAssignment(table1_bins[1], ())

    def test_str_lists_members(self, table1_bins):
        assert "[0,1]" in str(BinAssignment(table1_bins[2], (0, 1)))


class TestPlanCostAccounting:
    def test_empty_plan_costs_nothing(self):
        assert DecompositionPlan().total_cost == 0.0

    def test_example4_plan_p1_cost(self, table1_bins):
        # Plan P1 of Example 4: four 2-cardinality bins cost 0.72.
        plan = DecompositionPlan()
        for members in [(0, 1), (0, 1), (2, 3), (2, 3)]:
            plan.add(table1_bins[2], members)
        assert plan.total_cost == pytest.approx(0.72)
        assert plan.bin_usage() == {2: 4}

    def test_example4_plan_p2_cost(self, table1_bins):
        # Plan P2 of Example 4: two 3-bins and one 2-bin cost 0.66.
        plan = DecompositionPlan()
        plan.add(table1_bins[3], (0, 1, 2))
        plan.add(table1_bins[3], (0, 1, 3))
        plan.add(table1_bins[2], (2, 3))
        assert plan.total_cost == pytest.approx(0.66)

    def test_cost_per_task(self, table1_bins):
        task = CrowdsourcingTask.homogeneous(4, 0.5)
        plan = DecompositionPlan()
        plan.add(table1_bins[2], (0, 1))
        plan.add(table1_bins[2], (2, 3))
        assert plan.cost_per_task(task) == pytest.approx(0.36 / 4)

    def test_extend_merges_assignments(self, table1_bins):
        first = DecompositionPlan()
        first.add(table1_bins[1], (0,))
        second = DecompositionPlan()
        second.add(table1_bins[1], (1,))
        first.extend(second)
        assert len(first) == 2
        assert first.total_cost == pytest.approx(0.2)


class TestPlanReliability:
    def test_example4_plan_p1_reliability(self, table1_bins):
        plan = DecompositionPlan()
        for members in [(0, 1), (0, 1), (2, 3), (2, 3)]:
            plan.add(table1_bins[2], members)
        reliabilities = plan.reliabilities()
        for task_id in range(4):
            assert reliabilities[task_id] == pytest.approx(0.9775)

    def test_unassigned_task_has_zero_reliability(self, table1_bins):
        plan = DecompositionPlan()
        plan.add(table1_bins[1], (0,))
        assert plan.reliability_of(99) == 0.0

    def test_assignments_of_filters_by_task(self, table1_bins):
        plan = DecompositionPlan()
        plan.add(table1_bins[2], (0, 1))
        plan.add(table1_bins[1], (1,))
        assert len(plan.assignments_of(1)) == 2
        assert len(plan.assignments_of(0)) == 1


class TestPlanFeasibility:
    def test_example4_p1_is_feasible(self, table1_bins, example4_problem):
        plan = DecompositionPlan()
        for members in [(0, 1), (0, 1), (2, 3), (2, 3)]:
            plan.add(table1_bins[2], members)
        assert plan.is_feasible(example4_problem.task)
        assert plan.unsatisfied_tasks(example4_problem.task) == []

    def test_single_assignment_is_infeasible_for_high_threshold(
        self, table1_bins, example4_problem
    ):
        plan = DecompositionPlan()
        plan.add(table1_bins[3], (0, 1, 2))
        failing = plan.unsatisfied_tasks(example4_problem.task)
        assert set(failing) == {0, 1, 2, 3}

    def test_require_feasible_raises_with_task_ids(self, table1_bins, example4_problem):
        plan = DecompositionPlan(solver="unit-test")
        plan.add(table1_bins[1], (0,))
        with pytest.raises(InfeasiblePlanError, match="unit-test"):
            plan.require_feasible(example4_problem.task)

    def test_require_feasible_returns_plan(self, table1_bins):
        task = CrowdsourcingTask.homogeneous(1, 0.5)
        plan = DecompositionPlan()
        plan.add(table1_bins[1], (0,))
        assert plan.require_feasible(task) is plan

    def test_boundary_threshold_exactly_met(self, table1_bins):
        # A single 0.9-confidence bin exactly meets a 0.9 threshold.
        task = CrowdsourcingTask.homogeneous(1, 0.9)
        plan = DecompositionPlan()
        plan.add(table1_bins[1], (0,))
        assert plan.is_feasible(task)


class TestPlanSummary:
    def test_summary_without_task(self, table1_bins):
        plan = DecompositionPlan(solver="greedy")
        plan.add(table1_bins[1], (0,))
        summary = plan.summary()
        assert summary["solver"] == "greedy"
        assert summary["assignments"] == 1

    def test_summary_with_task_includes_feasibility(self, table1_bins):
        task = CrowdsourcingTask.homogeneous(1, 0.5)
        plan = DecompositionPlan()
        plan.add(table1_bins[1], (0,))
        summary = plan.summary(task)
        assert summary["feasible"] is True
        assert summary["min_reliability"] == pytest.approx(0.9)
