"""Tests for task bins and task bin sets."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.bins import TaskBin, TaskBinSet
from repro.core.errors import InvalidBinError


class TestTaskBin:
    def test_basic_construction(self):
        task_bin = TaskBin(2, 0.85, 0.18)
        assert task_bin.cardinality == 2
        assert task_bin.confidence == 0.85
        assert task_bin.cost == 0.18

    def test_residual_contribution(self):
        task_bin = TaskBin(1, 0.9, 0.1)
        assert task_bin.residual_contribution == pytest.approx(-math.log(0.1))

    def test_cost_per_task(self):
        assert TaskBin(3, 0.8, 0.24).cost_per_task == pytest.approx(0.08)

    def test_zero_cardinality_rejected(self):
        with pytest.raises(InvalidBinError):
            TaskBin(0, 0.9, 0.1)

    def test_confidence_of_one_rejected(self):
        with pytest.raises(ValueError):
            TaskBin(1, 1.0, 0.1)

    def test_zero_cost_rejected(self):
        with pytest.raises(ValueError):
            TaskBin(1, 0.9, 0.0)

    def test_str_mentions_cardinality(self):
        assert "b2" in str(TaskBin(2, 0.85, 0.18))


class TestTaskBinSet:
    def test_from_triples_table1(self, table1_bins):
        assert len(table1_bins) == 3
        assert table1_bins.cardinalities == [1, 2, 3]
        assert table1_bins[2].confidence == 0.85

    def test_iteration_orders_by_cardinality(self):
        bins = TaskBinSet([TaskBin(3, 0.8, 0.3), TaskBin(1, 0.9, 0.1)])
        assert [b.cardinality for b in bins] == [1, 3]

    def test_duplicate_cardinality_rejected(self):
        with pytest.raises(InvalidBinError):
            TaskBinSet([TaskBin(2, 0.8, 0.1), TaskBin(2, 0.9, 0.2)])

    def test_empty_rejected(self):
        with pytest.raises(InvalidBinError):
            TaskBinSet([])

    def test_contains_and_getitem(self, table1_bins):
        assert 2 in table1_bins
        assert 7 not in table1_bins
        with pytest.raises(KeyError):
            table1_bins[7]

    def test_max_and_min_confidence(self, table1_bins):
        assert table1_bins.max_confidence == 0.9
        assert table1_bins.min_confidence == 0.8

    def test_max_cardinality(self, table1_bins):
        assert table1_bins.max_cardinality == 3

    def test_from_profile_requires_aligned_keys(self):
        with pytest.raises(InvalidBinError):
            TaskBinSet.from_profile({1: 0.9}, {1: 0.1, 2: 0.2})

    def test_from_profile_builds_bins(self):
        bins = TaskBinSet.from_profile({1: 0.9, 2: 0.8}, {1: 0.1, 2: 0.15})
        assert bins[2].cost == 0.15

    def test_restrict_max_cardinality(self, table1_bins):
        restricted = table1_bins.restrict_max_cardinality(2)
        assert restricted.cardinalities == [1, 2]

    def test_restrict_below_minimum_rejected(self, table1_bins):
        bins = TaskBinSet([TaskBin(5, 0.8, 0.1)])
        with pytest.raises(InvalidBinError):
            bins.restrict_max_cardinality(2)

    def test_table1_is_monotone(self, table1_bins):
        assert table1_bins.is_monotone()

    def test_non_monotone_detected(self):
        bins = TaskBinSet([TaskBin(1, 0.7, 0.1), TaskBin(2, 0.9, 0.5)])
        assert not bins.is_monotone()

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=30),
                st.floats(min_value=0.5, max_value=0.99),
                st.floats(min_value=0.01, max_value=1.0),
            ),
            min_size=1,
            max_size=15,
            unique_by=lambda t: t[0],
        )
    )
    def test_round_trip_via_triples(self, triples):
        bins = TaskBinSet.from_triples(triples)
        assert len(bins) == len(triples)
        for cardinality, confidence, cost in triples:
            assert bins[cardinality].confidence == confidence
            assert bins[cardinality].cost == cost


class TestCalibrationEpoch:
    def test_default_epoch_is_zero(self, table1_bins):
        assert table1_bins.calibration_epoch == 0

    def test_negative_epoch_rejected(self):
        with pytest.raises(InvalidBinError):
            TaskBinSet([TaskBin(1, 0.9, 0.1)], calibration_epoch=-1)

    def test_with_epoch_keeps_bins_and_name(self, table1_bins):
        bumped = table1_bins.with_epoch(3)
        assert bumped.calibration_epoch == 3
        assert bumped.name == table1_bins.name
        assert bumped.bins() == table1_bins.bins()

    def test_next_epoch_increments(self, table1_bins):
        child = table1_bins.next_epoch()
        grandchild = child.next_epoch()
        assert child.calibration_epoch == 1
        assert grandchild.calibration_epoch == 2

    def test_next_epoch_can_replace_bins(self, table1_bins):
        corrected = [TaskBin(b.cardinality, 0.6, b.cost) for b in table1_bins]
        child = table1_bins.next_epoch(corrected, name="recal")
        assert child.calibration_epoch == 1
        assert child.name == "recal"
        assert all(b.confidence == 0.6 for b in child)

    def test_restrict_preserves_epoch(self, table1_bins):
        bumped = table1_bins.with_epoch(2)
        assert bumped.restrict_max_cardinality(2).calibration_epoch == 2
