"""Tests for SLADE problem instances."""

import pytest

from repro.core.bins import TaskBin, TaskBinSet
from repro.core.errors import InvalidProblemError
from repro.core.problem import SladeProblem


class TestConstruction:
    def test_homogeneous_factory(self, table1_bins):
        problem = SladeProblem.homogeneous(10, 0.9, table1_bins)
        assert problem.n == 10
        assert problem.m == 3
        assert problem.is_homogeneous
        assert problem.homogeneous_threshold == 0.9

    def test_heterogeneous_factory(self, table1_bins):
        problem = SladeProblem.heterogeneous([0.8, 0.9], table1_bins)
        assert not problem.is_homogeneous
        with pytest.raises(InvalidProblemError):
            _ = problem.homogeneous_threshold

    def test_all_zero_confidence_bins_rejected(self):
        bins = TaskBinSet([TaskBin(1, 0.0, 0.1)])
        with pytest.raises(InvalidProblemError):
            SladeProblem.homogeneous(1, 0.5, bins)

    def test_describe_mentions_counts(self, example4_problem):
        text = example4_problem.describe()
        assert "n=4" in text
        assert "m=3" in text


class TestRelaxedVariantDetection:
    def test_table1_with_low_threshold_is_relaxed(self, table1_bins):
        problem = SladeProblem.homogeneous(5, 0.75, table1_bins)
        assert problem.is_relaxed_variant()

    def test_table1_with_high_threshold_is_not_relaxed(self, table1_bins):
        problem = SladeProblem.homogeneous(5, 0.95, table1_bins)
        assert not problem.is_relaxed_variant()

    def test_heterogeneous_uses_max_threshold(self, table1_bins):
        problem = SladeProblem.heterogeneous([0.5, 0.85], table1_bins)
        assert not problem.is_relaxed_variant()
        problem = SladeProblem.heterogeneous([0.5, 0.75], table1_bins)
        assert problem.is_relaxed_variant()


class TestDerivedViews:
    def test_atomic_tasks_order(self, example4_problem):
        assert [t.task_id for t in example4_problem.atomic_tasks] == [0, 1, 2, 3]

    def test_restricted_to_bins(self, example4_problem):
        restricted = example4_problem.restricted_to_bins(2)
        assert restricted.m == 2
        assert restricted.n == example4_problem.n

    def test_restriction_keeps_task_object(self, example4_problem):
        restricted = example4_problem.restricted_to_bins(1)
        assert restricted.task is example4_problem.task
