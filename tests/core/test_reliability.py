"""Tests for reliability computations (Definition 2 / Equation 2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.reliability import (
    aggregate_reliability,
    assignments_needed,
    reliability_of_assignment,
    required_residual,
    residual_shortfall,
)


class TestAggregateReliability:
    def test_empty_assignment_has_zero_reliability(self):
        assert aggregate_reliability([]) == 0.0

    def test_single_bin_equals_its_confidence(self):
        assert aggregate_reliability([0.85]) == pytest.approx(0.85)

    def test_paper_example_4_two_b2_bins(self):
        # Two 2-cardinality bins of confidence 0.85: 1 - 0.15^2 = 0.9775.
        assert aggregate_reliability([0.85, 0.85]) == pytest.approx(0.9775)

    def test_paper_example_7_two_b3_bins_exceed_095(self):
        assert aggregate_reliability([0.8, 0.8]) > 0.95

    @given(st.lists(st.floats(min_value=0.0, max_value=0.99), max_size=10))
    def test_matches_direct_product_formula(self, confidences):
        expected = 1.0
        for confidence in confidences:
            expected *= 1.0 - confidence
        expected = 1.0 - expected
        assert aggregate_reliability(confidences) == pytest.approx(expected, abs=1e-9)

    @given(st.lists(st.floats(min_value=0.0, max_value=0.99), min_size=1, max_size=10))
    def test_monotone_in_extra_assignments(self, confidences):
        base = aggregate_reliability(confidences[:-1])
        extended = aggregate_reliability(confidences)
        assert extended >= base - 1e-12


class TestReliabilityOfAssignment:
    def test_uses_bin_confidences(self, table1_bins):
        bins = [table1_bins[3], table1_bins[3]]
        assert reliability_of_assignment(bins) == pytest.approx(0.96)


class TestAssignmentsNeeded:
    def test_zero_threshold_needs_nothing(self):
        assert assignments_needed(0.9, 0.0) == 0

    def test_paper_running_example(self):
        # t = 0.95 with the 0.8-confidence bin needs two assignments.
        assert assignments_needed(0.8, 0.95) == 2

    def test_single_strong_bin_suffices(self):
        assert assignments_needed(0.99, 0.95) == 1

    def test_zero_confidence_rejected(self):
        with pytest.raises(ValueError):
            assignments_needed(0.0, 0.9)

    @given(
        st.floats(min_value=0.1, max_value=0.99),
        st.floats(min_value=0.0, max_value=0.99),
    )
    def test_returned_count_is_minimal(self, confidence, threshold):
        count = assignments_needed(confidence, threshold)
        assert aggregate_reliability([confidence] * count) >= threshold - 1e-9
        if count > 0:
            assert aggregate_reliability([confidence] * (count - 1)) < threshold + 1e-9


class TestResidualShortfall:
    def test_no_assignments_equals_full_demand(self):
        assert residual_shortfall([], 0.9) == pytest.approx(required_residual(0.9))

    def test_satisfied_assignment_has_zero_shortfall(self):
        assert residual_shortfall([0.99, 0.99], 0.9) == 0.0

    def test_partial_assignment(self):
        shortfall = residual_shortfall([0.5], 0.9)
        assert 0.0 < shortfall < required_residual(0.9)
