"""Tests for atomic tasks and large-scale crowdsourcing tasks."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import InvalidProblemError
from repro.core.task import AtomicTask, CrowdsourcingTask


class TestAtomicTask:
    def test_basic_construction(self):
        task = AtomicTask(3, 0.9)
        assert task.task_id == 3
        assert task.threshold == 0.9

    def test_required_residual_matches_log_transform(self):
        task = AtomicTask(0, 0.95)
        assert task.required_residual == pytest.approx(-math.log(0.05))

    def test_payload_defaults_to_empty_mapping(self):
        assert dict(AtomicTask(0).payload) == {}

    def test_payload_is_carried(self):
        task = AtomicTask(0, 0.9, payload={"truth": True})
        assert task.payload["truth"] is True

    def test_with_threshold_returns_new_task(self):
        task = AtomicTask(0, 0.9, payload={"truth": False})
        updated = task.with_threshold(0.99)
        assert updated.threshold == 0.99
        assert updated.task_id == 0
        assert task.threshold == 0.9

    def test_threshold_of_one_rejected(self):
        with pytest.raises(ValueError):
            AtomicTask(0, 1.0)

    def test_negative_id_rejected(self):
        with pytest.raises(InvalidProblemError):
            AtomicTask(-1, 0.9)


class TestCrowdsourcingTaskConstruction:
    def test_homogeneous_builder(self):
        task = CrowdsourcingTask.homogeneous(10, 0.9)
        assert len(task) == 10
        assert task.is_homogeneous
        assert task.thresholds == [0.9] * 10

    def test_heterogeneous_builder(self):
        task = CrowdsourcingTask.heterogeneous([0.8, 0.9, 0.95])
        assert len(task) == 3
        assert not task.is_homogeneous
        assert task.max_threshold == 0.95
        assert task.min_threshold == 0.8

    def test_duplicate_ids_rejected(self):
        with pytest.raises(InvalidProblemError):
            CrowdsourcingTask([AtomicTask(1, 0.9), AtomicTask(1, 0.9)])

    def test_empty_rejected(self):
        with pytest.raises(InvalidProblemError):
            CrowdsourcingTask([])

    def test_zero_n_rejected(self):
        with pytest.raises(InvalidProblemError):
            CrowdsourcingTask.homogeneous(0, 0.9)

    def test_empty_thresholds_rejected(self):
        with pytest.raises(InvalidProblemError):
            CrowdsourcingTask.heterogeneous([])


class TestCrowdsourcingTaskViews:
    def test_iteration_preserves_order(self):
        task = CrowdsourcingTask.heterogeneous([0.8, 0.9, 0.7])
        assert [t.task_id for t in task] == [0, 1, 2]

    def test_indexing(self):
        task = CrowdsourcingTask.homogeneous(3, 0.9)
        assert task[1].task_id == 1

    def test_by_id_returns_matching_task(self):
        task = CrowdsourcingTask.heterogeneous([0.8, 0.9])
        assert task.by_id(1).threshold == 0.9

    def test_by_id_unknown_raises(self):
        task = CrowdsourcingTask.homogeneous(2, 0.9)
        with pytest.raises(KeyError):
            task.by_id(99)

    def test_single_task_is_homogeneous(self):
        assert CrowdsourcingTask.homogeneous(1, 0.9).is_homogeneous

    def test_subset_keeps_thresholds(self):
        task = CrowdsourcingTask.heterogeneous([0.8, 0.9, 0.95, 0.7])
        subset = task.subset([1, 3])
        assert sorted(t.task_id for t in subset) == [1, 3]
        assert subset.by_id(3).threshold == 0.7

    def test_subset_unknown_id_raises(self):
        task = CrowdsourcingTask.homogeneous(3, 0.9)
        with pytest.raises(KeyError):
            task.subset([0, 5])

    @given(st.lists(st.floats(min_value=0.5, max_value=0.99), min_size=1, max_size=50))
    def test_threshold_extremes_match_python_min_max(self, thresholds):
        task = CrowdsourcingTask.heterogeneous(thresholds)
        assert task.max_threshold == max(thresholds)
        assert task.min_threshold == min(thresholds)
