"""Tests for the heterogeneous OPQ-Extended solver (Algorithms 4-5)."""

import math

import pytest

from repro.algorithms.greedy import GreedySolver
from repro.algorithms.opq_extended import (
    OPQExtendedSolver,
    assign_to_groups,
    build_opq_set,
    partition_boundaries,
)
from repro.core.errors import InvalidProblemError
from repro.core.problem import SladeProblem
from repro.utils.logmath import residual_from_reliability


class TestPartitionBoundaries:
    def test_paper_example10_boundaries(self):
        # Thresholds 0.5/0.6/0.7/0.86 give theta in [0.69, 1.97]; the paper
        # derives two intervals with upper bounds 1 and theta_max.
        theta_min = residual_from_reliability(0.5)
        theta_max = residual_from_reliability(0.86)
        boundaries = partition_boundaries(theta_min, theta_max)
        assert len(boundaries) == 2
        assert boundaries[0] == pytest.approx(1.0)
        assert boundaries[1] == pytest.approx(theta_max)

    def test_single_threshold_collapses_to_one_group(self):
        theta = residual_from_reliability(0.9)
        assert partition_boundaries(theta, theta) == [pytest.approx(theta)]

    def test_boundaries_cover_theta_max(self):
        boundaries = partition_boundaries(0.7, 5.3)
        assert boundaries[-1] == pytest.approx(5.3)
        assert all(b <= 5.3 + 1e-12 for b in boundaries)

    def test_boundaries_are_increasing(self):
        boundaries = partition_boundaries(0.3, 6.0)
        assert boundaries == sorted(boundaries)

    def test_invalid_range_rejected(self):
        with pytest.raises(InvalidProblemError):
            partition_boundaries(2.0, 1.0)
        with pytest.raises(InvalidProblemError):
            partition_boundaries(0.0, 1.0)


class TestBuildOpqSet:
    def test_example10_queues(self, table1_bins):
        # Table 4: OPQ_0 (t = 0.632) holds single bins of every cardinality;
        # Table 5: OPQ_1 (t = 0.86) holds only {1 x b1}.
        groups = build_opq_set(table1_bins, [0.5, 0.6, 0.7, 0.86])
        assert len(groups) == 2
        first, second = groups
        assert first.threshold == pytest.approx(1 - math.exp(-1.0), abs=1e-9)
        assert [dict(c.counts) for c in first.queue] == [{3: 1}, {2: 1}, {1: 1}]
        assert second.threshold == pytest.approx(0.86)
        assert [dict(c.counts) for c in second.queue] == [{1: 1}]

    def test_group_thresholds_dominate_member_thresholds(self, table1_bins):
        thresholds = [0.55, 0.7, 0.9, 0.95]
        groups = build_opq_set(table1_bins, thresholds)
        residuals = {i: residual_from_reliability(t) for i, t in enumerate(thresholds)}
        membership = assign_to_groups(residuals, groups)
        for group in groups:
            for task_id in membership[group.index]:
                assert residuals[task_id] <= group.upper_residual + 1e-9

    def test_empty_thresholds_rejected(self, table1_bins):
        with pytest.raises(InvalidProblemError):
            build_opq_set(table1_bins, [])


class TestAssignToGroups:
    def test_example11_membership(self, table1_bins):
        thresholds = [0.5, 0.6, 0.7, 0.86]
        groups = build_opq_set(table1_bins, thresholds)
        residuals = {i: residual_from_reliability(t) for i, t in enumerate(thresholds)}
        membership = assign_to_groups(residuals, groups)
        assert sorted(membership[0]) == [0, 1]
        assert sorted(membership[1]) == [2, 3]

    def test_every_task_lands_in_exactly_one_group(self, table1_bins):
        thresholds = [0.55, 0.7, 0.8, 0.9, 0.95, 0.97]
        groups = build_opq_set(table1_bins, thresholds)
        residuals = {i: residual_from_reliability(t) for i, t in enumerate(thresholds)}
        membership = assign_to_groups(residuals, groups)
        all_ids = sorted(i for ids in membership.values() for i in ids)
        assert all_ids == list(range(len(thresholds)))


class TestOPQExtendedSolver:
    def test_example11_cost(self, heterogeneous_example_problem):
        # Example 11: the merged plan costs 0.38.
        result = OPQExtendedSolver().solve(heterogeneous_example_problem)
        assert result.total_cost == pytest.approx(0.38, abs=1e-9)

    def test_example11_plan_structure(self, heterogeneous_example_problem):
        # {a1, a2} in one 2-bin plus {a3} and {a4} in singleton bins.
        result = OPQExtendedSolver().solve(heterogeneous_example_problem)
        assert result.plan.bin_usage() == {2: 1, 1: 2}

    def test_plan_is_feasible(self, heterogeneous_example_problem):
        result = OPQExtendedSolver().solve(heterogeneous_example_problem)
        assert result.plan.is_feasible(heterogeneous_example_problem.task)

    def test_homogeneous_input_accepted(self, table1_bins):
        problem = SladeProblem.homogeneous(6, 0.95, table1_bins)
        result = OPQExtendedSolver().solve(problem)
        assert result.feasible

    def test_metadata_reports_groups(self, heterogeneous_example_problem):
        result = OPQExtendedSolver().solve(heterogeneous_example_problem)
        assert result.metadata["groups"] == 2
        assert sum(result.metadata["group_sizes"].values()) == 4

    def test_theorem3_bound_against_greedy_reference(self, table1_bins):
        # The formal bound is against OPT; greedy provides a feasible upper
        # bound on OPT, so OPQ-Extended must stay within the Theorem 3 factor
        # of the greedy cost as well.
        thresholds = [0.55, 0.65, 0.8, 0.9, 0.95, 0.6, 0.7, 0.85]
        problem = SladeProblem.heterogeneous(thresholds, table1_bins)
        extended = OPQExtendedSolver().solve(problem).total_cost
        greedy = GreedySolver().solve(problem).total_cost
        theta_max = residual_from_reliability(max(thresholds))
        theta_min = residual_from_reliability(min(thresholds))
        factor = 2 * math.ceil(math.log2(theta_max / theta_min) or 1) * max(
            1.0, math.log2(len(thresholds))
        )
        assert extended <= greedy * max(factor, 1.0) + 1e-9

    def test_wide_threshold_range_multiple_groups(self, table1_bins):
        thresholds = [0.5] * 5 + [0.95] * 5
        problem = SladeProblem.heterogeneous(thresholds, table1_bins)
        result = OPQExtendedSolver().solve(problem)
        assert result.feasible
        assert result.metadata["groups"] >= 2
