"""Tests for the CIP baseline solver (Section 4.3)."""

import pytest

from repro.algorithms.baseline import CIPBaselineSolver
from repro.algorithms.opq import OPQSolver
from repro.core.problem import SladeProblem


class TestBaselineFeasibility:
    def test_running_example_is_feasible(self, example4_problem):
        result = CIPBaselineSolver(seed=0).solve(example4_problem)
        assert result.feasible

    def test_homogeneous_medium_instance(self, table1_bins):
        problem = SladeProblem.homogeneous(60, 0.9, table1_bins)
        result = CIPBaselineSolver(chunk_size=32, seed=1).solve(problem)
        assert result.feasible

    def test_heterogeneous_instance(self, table1_bins):
        thresholds = [0.6, 0.7, 0.8, 0.9, 0.95] * 6
        problem = SladeProblem.heterogeneous(thresholds, table1_bins)
        result = CIPBaselineSolver(chunk_size=16, seed=2).solve(problem)
        assert result.feasible

    def test_jelly_menu_instance(self, small_jelly_problem):
        result = CIPBaselineSolver(chunk_size=25, seed=3).solve(small_jelly_problem)
        assert result.feasible


class TestBaselineBehaviour:
    def test_deterministic_for_fixed_seed(self, table1_bins):
        problem = SladeProblem.homogeneous(30, 0.9, table1_bins)
        first = CIPBaselineSolver(chunk_size=16, seed=7).solve(problem).total_cost
        second = CIPBaselineSolver(chunk_size=16, seed=7).solve(problem).total_cost
        assert first == pytest.approx(second)

    def test_not_cheaper_than_opq_on_homogeneous_instance(self, table1_bins):
        # The paper's headline: the baseline is the least effective solver.
        # Randomized rounding over-covers, so it should not beat OPQ.
        problem = SladeProblem.homogeneous(90, 0.9, table1_bins)
        baseline = CIPBaselineSolver(chunk_size=32, seed=5).solve(problem).total_cost
        opq = OPQSolver().solve(problem).total_cost
        assert baseline >= opq - 1e-9

    def test_metadata_reports_lp_calls(self, table1_bins):
        problem = SladeProblem.homogeneous(40, 0.9, table1_bins)
        result = CIPBaselineSolver(chunk_size=10, seed=0).solve(problem)
        assert result.metadata["lp_calls"] == 4
        assert result.metadata["columns_generated"] > 0

    def test_chunking_covers_every_task(self, table1_bins):
        problem = SladeProblem.homogeneous(23, 0.9, table1_bins)
        result = CIPBaselineSolver(chunk_size=10, seed=0).solve(problem)
        covered = set(result.plan.reliabilities())
        assert covered == set(range(23))

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            CIPBaselineSolver(chunk_size=0)

    def test_zero_random_columns_still_feasible(self, table1_bins):
        problem = SladeProblem.homogeneous(20, 0.9, table1_bins)
        solver = CIPBaselineSolver(chunk_size=10, random_columns_per_task=0, seed=0)
        assert solver.solve(problem).feasible

    def test_explicit_rounding_boost(self, table1_bins):
        problem = SladeProblem.homogeneous(20, 0.9, table1_bins)
        solver = CIPBaselineSolver(chunk_size=10, rounding_boost=1.0, seed=0)
        assert solver.solve(problem).feasible
