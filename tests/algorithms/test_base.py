"""Tests for the solver base class and SolveResult."""

import pytest

from repro.algorithms.base import Solver, SolveResult
from repro.core.errors import InfeasiblePlanError
from repro.core.plan import DecompositionPlan
from repro.core.problem import SladeProblem


class _FeasibleStub(Solver):
    """Covers every task with enough 1-cardinality bins to pass verification."""

    name = "stub-feasible"

    def _solve(self, problem: SladeProblem) -> DecompositionPlan:
        plan = DecompositionPlan()
        task_bin = problem.bins[1]
        for atomic in problem.task:
            needed = 0.0
            while True:
                plan.add(task_bin, (atomic.task_id,))
                needed += task_bin.residual_contribution
                if needed >= atomic.required_residual:
                    break
        self.record("touched", problem.n)
        return plan


class _InfeasibleStub(Solver):
    """Returns an empty plan; verification must fail."""

    name = "stub-infeasible"

    def _solve(self, problem: SladeProblem) -> DecompositionPlan:
        return DecompositionPlan()


class TestSolverWrapper:
    def test_solve_returns_result_with_metadata(self, example4_problem):
        result = _FeasibleStub().solve(example4_problem)
        assert isinstance(result, SolveResult)
        assert result.solver == "stub-feasible"
        assert result.metadata["touched"] == 4
        assert result.feasible
        assert result.elapsed_seconds >= 0.0

    def test_plan_is_tagged_with_solver_name(self, example4_problem):
        result = _FeasibleStub().solve(example4_problem)
        assert result.plan.solver == "stub-feasible"

    def test_verification_failure_raises(self, example4_problem):
        with pytest.raises(InfeasiblePlanError):
            _InfeasibleStub().solve(example4_problem)

    def test_verification_can_be_disabled(self, example4_problem):
        result = _InfeasibleStub(verify=False).solve(example4_problem)
        assert not result.feasible

    def test_metadata_reset_between_calls(self, example4_problem):
        solver = _FeasibleStub()
        first = solver.solve(example4_problem)
        second = solver.solve(example4_problem)
        assert first.metadata == second.metadata
        assert first.metadata is not second.metadata


class TestSolveResultSummary:
    def test_summary_flattens_metadata(self, example4_problem):
        result = _FeasibleStub().solve(example4_problem)
        summary = result.summary()
        assert summary["solver"] == "stub-feasible"
        assert summary["n"] == 4
        assert summary["meta_touched"] == 4
        assert summary["total_cost"] == pytest.approx(result.total_cost)
