"""Property-based tests of the paper's OPQ guarantees (Theorem 2, Corollary 1).

Hypothesis generates small random instances and checks, for every one of them:

* the OPQ-Based plan never beats the exhaustive optimum (it is a feasible
  plan, so its cost is >= OPT),
* the cost stays within the ``log n`` factor of Theorem 2,
* when ``n`` is a multiple of the head combination's LCM, the plan is exactly
  optimal (Corollary 1) and equals ``n * UC(OPQ_1)``,
* every registry solver produces feasible, correctly-priced plans on
  instances it accepts.

All runs are derandomized so CI is deterministic.
"""

import math

import pytest
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.algorithms.exhaustive import ExactSolver
from repro.algorithms.opq import OPQSolver, build_optimal_priority_queue
from repro.algorithms.registry import available_solvers, create_solver
from repro.core.bins import TaskBinSet
from repro.core.problem import SladeProblem

_SETTINGS = settings(
    max_examples=25,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Small menus keep the exhaustive oracle fast: cardinalities 1..3, and
#: confidences high enough that few postings per task are ever needed.
tiny_menus = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=3),
        st.floats(min_value=0.55, max_value=0.95),
        st.floats(min_value=0.05, max_value=1.0),
    ),
    min_size=1,
    max_size=3,
    unique_by=lambda triple: triple[0],
).map(TaskBinSet.from_triples)

#: Larger menus for the Corollary 1 property, which needs no oracle.
menus = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=0.4, max_value=0.97),
        st.floats(min_value=0.02, max_value=2.0),
    ),
    min_size=1,
    max_size=5,
    unique_by=lambda triple: triple[0],
).map(TaskBinSet.from_triples)

thresholds = st.floats(min_value=0.6, max_value=0.9)


class TestTheorem2AgainstTheOracle:
    @_SETTINGS
    @given(tiny_menus, st.integers(min_value=1, max_value=5), thresholds)
    def test_opq_cost_at_least_the_optimum(self, bins, n, threshold):
        problem = SladeProblem.homogeneous(n, threshold, bins)
        opq_cost = OPQSolver().solve(problem).total_cost
        optimum = ExactSolver(max_tasks=6).solve(problem).total_cost
        assert opq_cost >= optimum - 1e-9

    @_SETTINGS
    @given(tiny_menus, st.integers(min_value=1, max_value=5), thresholds)
    def test_opq_cost_within_log_n_of_the_optimum(self, bins, n, threshold):
        """Theorem 2 in its operating regime: every queue block fits in n.

        When some Pareto combination's LCM exceeds ``n``, the exhaustive
        optimum may satisfy the whole instance with a single partially
        filled large bin while Algorithm 3 falls back to smaller blocks, so
        the ratio is unbounded there; the paper's guarantee concerns the
        large-``n`` regime where blocks are usable.
        """
        queue = build_optimal_priority_queue(bins, threshold)
        assume(max(combination.lcm for combination in queue) <= n)
        problem = SladeProblem.homogeneous(n, threshold, bins)
        opq_cost = OPQSolver().solve(problem).total_cost
        optimum = ExactSolver(max_tasks=6).solve(problem).total_cost
        bound = max(1.0, math.log2(n) + 1.0)
        assert opq_cost <= optimum * bound + 1e-9


class TestCorollary1ExactnessOnFullBlocks:
    @_SETTINGS
    @given(menus, st.integers(min_value=1, max_value=4), thresholds)
    def test_multiples_of_head_lcm_are_optimal(self, bins, blocks, threshold):
        """When ``n % LCM(OPQ_1) == 0`` the plan costs exactly ``n * UC_1``.

        ``n * UC(OPQ_1)`` is the Lemma 2 lower bound on *any* feasible plan,
        so matching it proves the plan optimal — Corollary 1 without needing
        the exponential oracle.
        """
        queue = build_optimal_priority_queue(bins, threshold)
        n = blocks * queue.head.lcm
        problem = SladeProblem.homogeneous(n, threshold, bins)
        result = OPQSolver().solve(problem)
        lower_bound = n * queue.head.unit_cost
        assert result.total_cost == pytest.approx(lower_bound)
        assert result.feasible

    @_SETTINGS
    @given(menus, thresholds)
    def test_head_has_the_lowest_unit_cost(self, bins, threshold):
        """Lemma 2: the head of the Pareto frontier minimises unit cost."""
        queue = build_optimal_priority_queue(bins, threshold)
        head_uc = queue.head.unit_cost
        assert all(comb.unit_cost >= head_uc - 1e-12 for comb in queue)


class TestEveryRegistrySolverIsFeasible:
    """Plan invariants hold for each registered solver on instances it accepts."""

    @pytest.mark.parametrize("name", available_solvers())
    @_SETTINGS
    @given(st.data())
    def test_feasible_and_correctly_priced(self, name, data):
        bins = data.draw(menus, label="bins")

        if name == "dp-relaxed":
            # The relaxed variant needs every confidence >= every threshold.
            upper = min(0.9, bins.min_confidence)
            threshold_strategy = st.floats(min_value=0.3, max_value=upper)
        else:
            threshold_strategy = st.floats(min_value=0.5, max_value=0.95)

        if name == "exact":
            n = data.draw(st.integers(min_value=1, max_value=3), label="n")
        elif name == "baseline":
            n = data.draw(st.integers(min_value=1, max_value=24), label="n")
        else:
            n = data.draw(st.integers(min_value=1, max_value=40), label="n")

        if name in ("opq", "dp-relaxed", "exact"):
            # Homogeneous-only (opq) or oracle-sized instances.
            threshold = data.draw(threshold_strategy, label="threshold")
            problem = SladeProblem.homogeneous(n, threshold, bins)
        else:
            values = data.draw(
                st.lists(threshold_strategy, min_size=n, max_size=n),
                label="thresholds",
            )
            problem = SladeProblem.heterogeneous(values, bins)

        options = {"baseline": {"chunk_size": 8, "seed": 0}}.get(name, {})
        result = create_solver(name, **options).solve(problem)

        assert result.feasible
        assert result.plan.total_cost == pytest.approx(
            sum(assignment.task_bin.cost for assignment in result.plan)
        )
        for assignment in result.plan:
            assert len(assignment.task_ids) <= assignment.task_bin.cardinality
            assert len(set(assignment.task_ids)) == len(assignment.task_ids)
