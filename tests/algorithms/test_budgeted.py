"""Tests for the budget-constrained decomposer (dual SLADE)."""

import pytest

from repro.algorithms.budgeted import BudgetedDecomposer
from repro.algorithms.opq import OPQSolver
from repro.core.errors import InvalidProblemError
from repro.core.problem import SladeProblem
from repro.core.task import CrowdsourcingTask
from repro.datasets.jelly import jelly_bin_set


class TestBudgetedDecomposer:
    @pytest.fixture(scope="class")
    def decomposer(self, ):
        return BudgetedDecomposer(jelly_bin_set(10))

    def test_plan_respects_budget(self, decomposer):
        result = decomposer.decompose(n=100, budget=1.5)
        assert result.cost <= 1.5 + 1e-9
        assert result.utilisation <= 1.0 + 1e-9

    def test_plan_achieves_reported_reliability(self, decomposer):
        result = decomposer.decompose(n=100, budget=1.5)
        task = CrowdsourcingTask.homogeneous(100, result.reliability)
        # Allow a hair of slack for the residual->reliability rounding.
        reliabilities = result.plan.reliabilities()
        for atomic in task:
            assert reliabilities[atomic.task_id] >= result.reliability - 1e-6

    def test_more_budget_buys_more_reliability(self, decomposer):
        tight = decomposer.decompose(n=100, budget=0.8)
        generous = decomposer.decompose(n=100, budget=3.0)
        assert generous.reliability >= tight.reliability - 1e-9
        assert generous.cost >= tight.cost - 1e-9

    def test_huge_budget_hits_search_ceiling(self, decomposer):
        result = decomposer.decompose(n=20, budget=1_000.0)
        assert result.reliability == pytest.approx(decomposer.max_reliability)

    def test_insufficient_budget_rejected(self, decomposer):
        with pytest.raises(InvalidProblemError):
            decomposer.decompose(n=1_000, budget=0.01)

    def test_invalid_arguments_rejected(self, decomposer):
        with pytest.raises(InvalidProblemError):
            decomposer.decompose(n=0, budget=1.0)
        with pytest.raises(InvalidProblemError):
            decomposer.decompose(n=10, budget=0.0)

    def test_invalid_configuration_rejected(self):
        bins = jelly_bin_set(5)
        with pytest.raises(InvalidProblemError):
            BudgetedDecomposer(bins, min_reliability=0.9, max_reliability=0.8)
        with pytest.raises(InvalidProblemError):
            BudgetedDecomposer(bins, tolerance=0.0)

    def test_consistent_with_forward_problem(self):
        # Solving the forward SLADE problem at the returned reliability should
        # cost no more than the budget either (same solver, same menu).
        bins = jelly_bin_set(10)
        decomposer = BudgetedDecomposer(bins)
        result = decomposer.decompose(n=200, budget=2.5)
        forward = OPQSolver().solve(
            SladeProblem.homogeneous(200, result.reliability, bins)
        )
        assert forward.total_cost <= 2.5 + 1e-6

    def test_iterations_reported(self, decomposer):
        result = decomposer.decompose(n=100, budget=1.2)
        assert result.iterations >= 1
