"""End-to-end checks of every worked example in the paper.

These tests pin the reproduction to the exact numbers the paper derives by
hand for the running example (Table 1 bins, four atomic tasks):

* Example 4 — the optimal plan costs 0.66 (P2) and the 2-bin plan P1 costs 0.72;
* Example 5 — the Greedy plan costs 0.74;
* Example 7 / Table 3 — the OPQ content for t = 0.95;
* Example 9 — the OPQ-Based plan costs 0.68;
* Example 10 / Tables 4-5 — the OPQ set for thresholds 0.5/0.6/0.7/0.86;
* Example 11 — the OPQ-Extended plan costs 0.38.
"""

import pytest

from repro.algorithms.exhaustive import ExactSolver
from repro.algorithms.greedy import GreedySolver
from repro.algorithms.opq import OPQSolver, build_optimal_priority_queue
from repro.algorithms.opq_extended import OPQExtendedSolver, build_opq_set
from repro.core.plan import DecompositionPlan


class TestExample4:
    def test_plan_p1_cost_and_reliability(self, table1_bins, example4_problem):
        plan = DecompositionPlan()
        for members in [(0, 1), (0, 1), (2, 3), (2, 3)]:
            plan.add(table1_bins[2], members)
        assert plan.total_cost == pytest.approx(0.72)
        assert plan.is_feasible(example4_problem.task)

    def test_plan_p2_cost_and_reliability(self, table1_bins, example4_problem):
        plan = DecompositionPlan()
        plan.add(table1_bins[3], (0, 1, 2))
        plan.add(table1_bins[3], (0, 1, 3))
        plan.add(table1_bins[2], (2, 3))
        assert plan.total_cost == pytest.approx(0.66)
        assert plan.is_feasible(example4_problem.task)

    def test_p2_is_the_optimum(self, example4_problem):
        assert ExactSolver().solve(example4_problem).total_cost == pytest.approx(0.66)


class TestExample5Greedy:
    def test_greedy_total_cost(self, example4_problem):
        assert GreedySolver().solve(example4_problem).total_cost == pytest.approx(0.74)


class TestTable3AndExample9:
    def test_table3_opq(self, table1_bins):
        queue = build_optimal_priority_queue(table1_bins, 0.95)
        assert [dict(c.counts) for c in queue] == [{3: 2}, {2: 2}, {1: 2}]
        assert [c.lcm for c in queue] == [3, 2, 1]
        assert [c.unit_cost for c in queue] == pytest.approx([0.16, 0.18, 0.20])

    def test_example9_opq_based_cost(self, example4_problem):
        assert OPQSolver().solve(example4_problem).total_cost == pytest.approx(0.68)

    def test_ordering_of_the_three_algorithms(self, example4_problem):
        # exact (0.66) <= OPQ-Based (0.68) <= Greedy (0.74).
        exact = ExactSolver().solve(example4_problem).total_cost
        opq = OPQSolver().solve(example4_problem).total_cost
        greedy = GreedySolver().solve(example4_problem).total_cost
        assert exact <= opq <= greedy


class TestExamples10And11Heterogeneous:
    THRESHOLDS = [0.5, 0.6, 0.7, 0.86]

    def test_table4_and_table5_opq_set(self, table1_bins):
        groups = build_opq_set(table1_bins, self.THRESHOLDS)
        assert len(groups) == 2
        table4, table5 = groups
        assert [dict(c.counts) for c in table4.queue] == [{3: 1}, {2: 1}, {1: 1}]
        assert [c.unit_cost for c in table4.queue] == pytest.approx([0.08, 0.09, 0.10])
        assert [dict(c.counts) for c in table5.queue] == [{1: 1}]
        assert [c.unit_cost for c in table5.queue] == pytest.approx([0.10])

    def test_example11_cost(self, heterogeneous_example_problem):
        result = OPQExtendedSolver().solve(heterogeneous_example_problem)
        assert result.total_cost == pytest.approx(0.38)

    def test_example11_reliabilities_meet_thresholds(self, heterogeneous_example_problem):
        result = OPQExtendedSolver().solve(heterogeneous_example_problem)
        reliabilities = result.plan.reliabilities()
        for atomic in heterogeneous_example_problem.task:
            assert reliabilities[atomic.task_id] >= atomic.threshold - 1e-9
