"""Tests for the exact uniform-cost-search oracle."""

import pytest

from repro.algorithms.exhaustive import ExactSolver
from repro.core.errors import InvalidProblemError
from repro.core.problem import SladeProblem


class TestExactSolver:
    def test_example4_optimum(self, example4_problem):
        # Example 4 identifies 0.66 as the optimal cost for the running example.
        result = ExactSolver().solve(example4_problem)
        assert result.total_cost == pytest.approx(0.66, abs=1e-9)
        assert result.feasible

    def test_single_task_picks_cheapest_sufficient_combination(self, table1_bins):
        problem = SladeProblem.homogeneous(1, 0.95, table1_bins)
        result = ExactSolver().solve(problem)
        # The cheapest way to reach 0.95 for one task is two b1 bins? No:
        # two b3 bins cost 0.48, two b2 cost 0.36, two b1 cost 0.2, and
        # b1 + b2 costs 0.28 — so 2 x b1 at 0.2 wins.
        assert result.total_cost == pytest.approx(0.2)

    def test_respects_max_tasks_guard(self, table1_bins):
        problem = SladeProblem.homogeneous(9, 0.9, table1_bins)
        with pytest.raises(InvalidProblemError):
            ExactSolver(max_tasks=8).solve(problem)

    def test_heterogeneous_instance(self, table1_bins):
        problem = SladeProblem.heterogeneous([0.5, 0.95], table1_bins)
        result = ExactSolver().solve(problem)
        assert result.feasible
        # Never worse than handling the tasks independently (0.1 + 0.2).
        assert result.total_cost <= 0.3 + 1e-9

    def test_cost_is_lower_bound_for_heuristics(self, example4_problem):
        from repro.algorithms.greedy import GreedySolver
        from repro.algorithms.opq import OPQSolver

        exact = ExactSolver().solve(example4_problem).total_cost
        assert GreedySolver().solve(example4_problem).total_cost >= exact - 1e-9
        assert OPQSolver().solve(example4_problem).total_cost >= exact - 1e-9

    def test_expanded_states_recorded(self, example4_problem):
        result = ExactSolver().solve(example4_problem)
        assert result.metadata["expanded_states"] > 0

    def test_low_threshold_single_bin_covers_all(self, table1_bins):
        problem = SladeProblem.homogeneous(3, 0.6, table1_bins)
        result = ExactSolver().solve(problem)
        # One 3-cardinality bin (confidence 0.8 >= 0.6) covers all three tasks.
        assert result.total_cost == pytest.approx(0.24)
