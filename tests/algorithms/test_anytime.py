"""Tests for the anytime solver: the greedy floor, budgeted refinement,
quality markers, and the truncated-frontier completeness bookkeeping."""

import time

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algorithms.anytime import (
    QUALITY_GREEDY,
    QUALITY_OPTIMAL,
    QUALITY_REFINED,
    AnytimeSolver,
)
from repro.algorithms.opq import (
    OPQSolver,
    build_optimal_priority_queue,
    queue_is_complete,
)
from repro.algorithms.registry import create_solver, solver_accepts_budget
from repro.core.bins import TaskBinSet
from repro.core.errors import InfeasiblePlanError
from repro.core.problem import SladeProblem
from repro.engine import PlanCache

QUALITIES = (QUALITY_OPTIMAL, QUALITY_REFINED, QUALITY_GREEDY)


class TestAnytimeLadder:
    def test_unbounded_solve_matches_opq(self, example4_problem):
        anytime = AnytimeSolver().solve(example4_problem)
        opq = OPQSolver().solve(example4_problem)
        assert anytime.plan.is_feasible(example4_problem.task)
        assert anytime.plan.total_cost == pytest.approx(opq.plan.total_cost)
        assert anytime.metadata["quality"] == QUALITY_OPTIMAL

    def test_tiny_budget_returns_greedy_floor(self, example4_problem):
        result = AnytimeSolver(budget_seconds=0.0).solve(example4_problem)
        assert result.plan.is_feasible(example4_problem.task)
        assert result.metadata["quality"] == QUALITY_GREEDY
        assert result.metadata["tier"] == "greedy"

    def test_any_budget_yields_feasible_plan(self, example4_problem):
        for budget in (0.0, 1e-5, 1e-3, 0.1):
            result = AnytimeSolver(budget_seconds=budget).solve(example4_problem)
            assert result.plan.is_feasible(example4_problem.task)
            assert result.metadata["quality"] in QUALITIES

    def test_heterogeneous_budgeted_solve(self, heterogeneous_example_problem):
        result = AnytimeSolver(budget_seconds=0.05).solve(
            heterogeneous_example_problem
        )
        assert result.plan.is_feasible(heterogeneous_example_problem.task)
        assert result.metadata["quality"] in QUALITIES

    def test_never_costs_more_than_greedy(self, example4_problem):
        greedy = create_solver("greedy").solve(example4_problem)
        for budget in (0.0, 1e-4, None):
            result = AnytimeSolver(budget_seconds=budget).solve(example4_problem)
            assert result.plan.total_cost <= greedy.plan.total_cost + 1e-9

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            AnytimeSolver(budget_seconds=-1.0)

    def test_registry_exposes_budget_capability(self):
        assert solver_accepts_budget("anytime")
        assert not solver_accepts_budget("opq")
        result = create_solver("anytime")
        assert isinstance(result, AnytimeSolver)

    def test_budget_forwarded_through_registry(self, example4_problem):
        solver = create_solver("anytime", budget_seconds=0.0)
        result = solver.solve(example4_problem)
        assert result.metadata["quality"] == QUALITY_GREEDY


class TestCacheInterplay:
    def test_warm_cache_answers_optimal_from_cache(self, example4_problem):
        cache = PlanCache()
        first = AnytimeSolver(queue_factory=cache).solve(example4_problem)
        second = AnytimeSolver(
            queue_factory=cache, budget_seconds=0.0
        ).solve(example4_problem)
        assert first.metadata["quality"] == QUALITY_OPTIMAL
        # The second call's zero budget doesn't matter: the complete cached
        # frontier answers without any enumeration.
        assert second.metadata["quality"] == QUALITY_OPTIMAL
        assert second.metadata["tier"] == "cache"
        assert second.plan.total_cost == pytest.approx(first.plan.total_cost)

    def test_expired_deadline_build_raises(self, table1_bins):
        with pytest.raises(InfeasiblePlanError, match="deadline"):
            build_optimal_priority_queue(
                table1_bins, 0.9, deadline=time.monotonic() - 1.0
            )

    def test_capped_queue_marked_incomplete(self, table1_bins):
        queue = build_optimal_priority_queue(
            table1_bins, 0.9, max_assignments=1
        )
        assert len(queue) > 0
        assert not queue_is_complete(queue)

    def test_untruncated_queue_marked_complete(self, table1_bins):
        queue = build_optimal_priority_queue(table1_bins, 0.9)
        assert queue_is_complete(queue)

    def test_publish_never_downgrades_complete_entry(self, table1_bins):
        cache = PlanCache()
        complete = build_optimal_priority_queue(table1_bins, 0.9)
        truncated = build_optimal_priority_queue(
            table1_bins, 0.9, max_assignments=1
        )
        assert cache.publish(table1_bins, 0.9, complete)
        assert not cache.publish(table1_bins, 0.9, truncated)
        assert queue_is_complete(cache.peek(table1_bins, 0.9))

    def test_publish_upgrades_incomplete_entry(self, table1_bins):
        cache = PlanCache()
        truncated = build_optimal_priority_queue(
            table1_bins, 0.9, max_assignments=1
        )
        complete = build_optimal_priority_queue(table1_bins, 0.9)
        assert cache.publish(table1_bins, 0.9, truncated)
        assert not queue_is_complete(cache.peek(table1_bins, 0.9))
        assert cache.publish(table1_bins, 0.9, complete)
        assert queue_is_complete(cache.peek(table1_bins, 0.9))


#: Random bin menus: 1-5 bins with distinct cardinalities.
bin_sets = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=0.35, max_value=0.97),
        st.floats(min_value=0.02, max_value=2.0),
    ),
    min_size=1,
    max_size=5,
    unique_by=lambda triple: triple[0],
).map(TaskBinSet.from_triples)


class TestFeasibilityProperty:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        instance=st.tuples(
            bin_sets,
            st.integers(min_value=1, max_value=30),
            st.floats(min_value=0.5, max_value=0.98),
        ),
        budget=st.one_of(
            st.none(), st.floats(min_value=0.0, max_value=0.02)
        ),
    )
    def test_returned_plans_always_meet_thresholds(self, instance, budget):
        """The anytime contract: whatever the budget, never an infeasible plan."""
        bins, n, threshold = instance
        problem = SladeProblem.homogeneous(n, threshold, bins)
        result = AnytimeSolver(budget_seconds=budget).solve(problem)
        assert result.plan.is_feasible(problem.task)
        assert result.metadata["quality"] in QUALITIES
