"""Tests for the OPQ-Based solver (Algorithm 3)."""

import pytest

from repro.algorithms.exhaustive import ExactSolver
from repro.algorithms.opq import OPQSolver, build_optimal_priority_queue
from repro.core.bins import TaskBin, TaskBinSet
from repro.core.errors import InvalidProblemError
from repro.core.problem import SladeProblem


class TestOPQOnPaperExample:
    def test_example9_cost(self, example4_problem):
        # Example 9: the OPQ-Based plan costs 0.68 on the running example.
        result = OPQSolver().solve(example4_problem)
        assert result.total_cost == pytest.approx(0.68, abs=1e-9)

    def test_example9_plan_structure(self, example4_problem):
        # The plan uses {2 x b3} for the first three tasks and {2 x b1} for
        # the remaining one: two 3-bins plus two 1-bins.
        result = OPQSolver().solve(example4_problem)
        assert result.plan.bin_usage() == {3: 2, 1: 2}

    def test_cheaper_than_greedy_on_running_example(self, example4_problem):
        from repro.algorithms.greedy import GreedySolver

        opq_cost = OPQSolver().solve(example4_problem).total_cost
        greedy_cost = GreedySolver().solve(example4_problem).total_cost
        assert opq_cost < greedy_cost

    def test_plan_is_feasible(self, example4_problem):
        result = OPQSolver().solve(example4_problem)
        assert result.plan.is_feasible(example4_problem.task)


class TestOptimalityOnBlockMultiples:
    def test_exact_optimum_when_n_is_block_multiple(self, table1_bins):
        # Corollary 1: when n is a multiple of OPQ1.LCM the plan is optimal.
        problem = SladeProblem.homogeneous(3, 0.95, table1_bins)
        opq_cost = OPQSolver().solve(problem).total_cost
        exact_cost = ExactSolver().solve(problem).total_cost
        assert opq_cost == pytest.approx(exact_cost, abs=1e-9)

    def test_exact_optimum_for_six_tasks(self, table1_bins):
        problem = SladeProblem.homogeneous(6, 0.95, table1_bins)
        opq_cost = OPQSolver().solve(problem).total_cost
        exact_cost = ExactSolver(max_tasks=6).solve(problem).total_cost
        assert opq_cost == pytest.approx(exact_cost, abs=1e-9)

    def test_block_multiple_cost_formula(self, table1_bins):
        # For n = 3k the cost is k * LCM * UC = k * 3 * 0.16.
        queue = build_optimal_priority_queue(table1_bins, 0.95)
        for k in (1, 2, 5):
            problem = SladeProblem.homogeneous(3 * k, 0.95, table1_bins)
            cost = OPQSolver().solve(problem).total_cost
            assert cost == pytest.approx(k * queue.head.block_cost)


class TestRemainderHandling:
    def test_single_task_smaller_than_every_block(self):
        # Only bins of cardinality 2 and 3 exist, so every combination has
        # LCM >= 2; a single task must still be covered (partial block).
        bins = TaskBinSet([TaskBin(2, 0.85, 0.18), TaskBin(3, 0.8, 0.24)])
        problem = SladeProblem.homogeneous(1, 0.95, bins)
        result = OPQSolver().solve(problem)
        assert result.feasible

    def test_previous_combination_reused_when_cheaper(self):
        # Construct a menu where re-using the big-block combination for the
        # remainder beats falling through to the tiny expensive bin.
        bins = TaskBinSet([TaskBin(1, 0.9, 10.0), TaskBin(5, 0.9, 1.0)])
        problem = SladeProblem.homogeneous(6, 0.9, bins)
        result = OPQSolver().solve(problem)
        # Remainder of one task: a second 5-bin (1.0) is far cheaper than a
        # 1-bin (10.0).
        assert result.plan.bin_usage() == {5: 2}
        assert result.total_cost == pytest.approx(2.0)

    def test_remainder_falls_through_to_smaller_blocks(self, table1_bins):
        problem = SladeProblem.homogeneous(5, 0.95, table1_bins)
        result = OPQSolver().solve(problem)
        assert result.feasible
        # 3 tasks through {2xb3} (0.48) + 2 tasks through {2xb2} (0.36).
        assert result.total_cost == pytest.approx(0.84)


class TestApproximationGuarantee:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6])
    def test_within_log_n_of_exact(self, table1_bins, n):
        import math

        problem = SladeProblem.homogeneous(n, 0.95, table1_bins)
        opq_cost = OPQSolver().solve(problem).total_cost
        exact_cost = ExactSolver(max_tasks=8).solve(problem).total_cost
        bound = max(1.0, math.log2(n) + 1.0)
        assert opq_cost <= exact_cost * bound + 1e-9


class TestInputValidation:
    def test_heterogeneous_problem_rejected(self, table1_bins):
        problem = SladeProblem.heterogeneous([0.8, 0.9], table1_bins)
        with pytest.raises(InvalidProblemError):
            OPQSolver().solve(problem)

    def test_prebuilt_queue_bypasses_homogeneity_check(self, table1_bins):
        queue = build_optimal_priority_queue(table1_bins, 0.95)
        problem = SladeProblem.heterogeneous([0.8, 0.9], table1_bins)
        result = OPQSolver(prebuilt_queue=queue).solve(problem)
        # The queue was built for 0.95 which dominates both thresholds.
        assert result.feasible

    def test_metadata_includes_queue_size(self, example4_problem):
        result = OPQSolver().solve(example4_problem)
        assert result.metadata["opq_size"] == 3
