"""Tests for the Greedy solver (Algorithm 1)."""

import pytest

from repro.algorithms.greedy import GreedySolver
from repro.core.bins import TaskBin, TaskBinSet
from repro.core.problem import SladeProblem


class TestGreedyOnPaperExample:
    def test_example5_cost(self, example4_problem):
        # Example 5 walks Algorithm 1 on the running example and obtains a
        # plan of total cost 0.74.
        result = GreedySolver().solve(example4_problem)
        assert result.total_cost == pytest.approx(0.74, abs=1e-9)

    def test_example5_plan_structure(self, example4_problem):
        # The worked example ends with four singleton bins, one 3-bin over the
        # first three tasks, and one final singleton for the last task.
        result = GreedySolver().solve(example4_problem)
        usage = result.plan.bin_usage()
        assert usage == {1: 5, 3: 1}

    def test_example5_first_choice_is_singleton_bin(self, example4_problem):
        # The first iteration picks b1 because 0.1 / -ln(0.1) is the smallest
        # cost-confidence ratio.
        result = GreedySolver().solve(example4_problem)
        first = result.plan.assignments[0]
        assert first.task_bin.cardinality == 1

    def test_plan_is_feasible(self, example4_problem):
        result = GreedySolver().solve(example4_problem)
        assert result.plan.is_feasible(example4_problem.task)


class TestGreedyGeneralBehaviour:
    def test_single_task_single_bin(self):
        bins = TaskBinSet([TaskBin(1, 0.9, 0.1)])
        problem = SladeProblem.homogeneous(1, 0.95, bins)
        result = GreedySolver().solve(problem)
        # 0.95 needs two 0.9-confidence assignments.
        assert result.plan.bin_usage() == {1: 2}
        assert result.total_cost == pytest.approx(0.2)

    def test_low_threshold_single_pass(self, table1_bins):
        problem = SladeProblem.homogeneous(6, 0.6, table1_bins)
        result = GreedySolver().solve(problem)
        assert result.feasible
        # One pass of any bin suffices for a 0.6 threshold.
        assert all(
            reliability >= 0.6 for reliability in result.plan.reliabilities().values()
        )

    def test_heterogeneous_thresholds_respected(self, table1_bins):
        problem = SladeProblem.heterogeneous([0.5, 0.99, 0.7], table1_bins)
        result = GreedySolver().solve(problem)
        reliabilities = result.plan.reliabilities()
        assert reliabilities[1] >= 0.99
        assert result.feasible

    def test_demanding_task_gets_more_assignments(self, table1_bins):
        problem = SladeProblem.heterogeneous([0.6, 0.995], table1_bins)
        result = GreedySolver().solve(problem)
        demanding = len(result.plan.assignments_of(1))
        easy = len(result.plan.assignments_of(0))
        assert demanding > easy

    def test_iterations_recorded(self, example4_problem):
        result = GreedySolver().solve(example4_problem)
        assert result.metadata["iterations"] >= 1

    def test_larger_instance_feasible(self, small_jelly_problem):
        result = GreedySolver().solve(small_jelly_problem)
        assert result.feasible
        assert result.total_cost > 0.0

    def test_prefers_cost_effective_bin(self):
        # A large cheap bin dominates; greedy should use it rather than
        # singletons.
        bins = TaskBinSet([TaskBin(1, 0.9, 1.0), TaskBin(10, 0.9, 1.5)])
        problem = SladeProblem.homogeneous(20, 0.9, bins)
        result = GreedySolver().solve(problem)
        assert result.plan.bin_usage() == {10: 2}

    def test_partial_final_bin_when_few_tasks_remain(self):
        # 11 tasks with a 10-cardinality bin: the ratio denominator uses the
        # residual sum of the single remaining task, so the tail is handled
        # with whatever is cheapest for one task.
        bins = TaskBinSet([TaskBin(1, 0.9, 1.0), TaskBin(10, 0.9, 1.5)])
        problem = SladeProblem.homogeneous(11, 0.9, bins)
        result = GreedySolver().solve(problem)
        assert result.feasible
        assert result.total_cost <= 2.5 + 1e-9
