"""Tests for the solver registry."""

import pytest

from repro.algorithms.base import Solver
from repro.algorithms.registry import (
    available_solvers,
    create_solver,
    register_solver,
    solver_accepts_queue_factory,
)
from repro.core.plan import DecompositionPlan


class TestRegistry:
    def test_builtin_solvers_present(self):
        names = available_solvers()
        for expected in ("greedy", "opq", "opq-extended", "baseline", "dp-relaxed", "exact"):
            assert expected in names

    def test_create_solver_returns_instances(self):
        solver = create_solver("greedy")
        assert isinstance(solver, Solver)
        assert solver.name == "greedy"

    def test_create_solver_forwards_kwargs(self):
        solver = create_solver("baseline", chunk_size=17)
        assert solver.chunk_size == 17

    def test_unknown_solver_lists_known_names(self):
        with pytest.raises(KeyError, match="greedy"):
            create_solver("does-not-exist")

    def test_queue_factory_capability_flags(self):
        # Only the OPQ-building solvers advertise the cache injection hook.
        assert solver_accepts_queue_factory("opq")
        assert solver_accepts_queue_factory("opq-extended")
        for name in ("greedy", "baseline", "dp-relaxed", "exact"):
            assert not solver_accepts_queue_factory(name)
        with pytest.raises(KeyError):
            solver_accepts_queue_factory("does-not-exist")

    def test_queue_factory_injection_is_used(self, example4_problem):
        calls = []

        def counting_factory(bins, threshold):
            from repro.algorithms.opq import build_optimal_priority_queue

            calls.append(threshold)
            return build_optimal_priority_queue(bins, threshold)

        solver = create_solver("opq", queue_factory=counting_factory)
        result = solver.solve(example4_problem)
        assert result.feasible
        assert calls == [0.95]

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_solver("greedy", lambda **kwargs: None)

    def test_registration_with_overwrite(self, example4_problem):
        class _Custom(Solver):
            name = "custom-test-solver"

            def _solve(self, problem):
                plan = DecompositionPlan()
                task_bin = problem.bins[1]
                for atomic in problem.task:
                    for _ in range(2):
                        plan.add(task_bin, (atomic.task_id,))
                return plan

        register_solver("custom-test-solver", _Custom, overwrite=True)
        try:
            result = create_solver("custom-test-solver").solve(example4_problem)
            assert result.feasible
        finally:
            # Leave the registry clean for other tests.
            register_solver("custom-test-solver", _Custom, overwrite=True)
