"""Approximation quality of the heuristics against the exact oracle.

The paper proves a log(n) approximation ratio for OPQ-Based (Theorem 2) and
observes empirically that it is the most cost-effective of the three
algorithms.  These tests quantify the gap on a grid of small instances where
the exact optimum is still computable.
"""

import math

import pytest

from repro.algorithms.exhaustive import ExactSolver
from repro.algorithms.greedy import GreedySolver
from repro.algorithms.opq import OPQSolver
from repro.core.bins import TaskBinSet
from repro.core.problem import SladeProblem

#: A few structurally different small menus.
MENUS = {
    "table1": [(1, 0.9, 0.10), (2, 0.85, 0.18), (3, 0.8, 0.24)],
    "cheap-large-bins": [(1, 0.9, 0.30), (2, 0.8, 0.35), (4, 0.7, 0.40)],
    "flat-confidence": [(1, 0.75, 0.10), (2, 0.75, 0.16), (3, 0.75, 0.20)],
}


@pytest.mark.parametrize("menu_name", sorted(MENUS))
@pytest.mark.parametrize("n", [2, 4, 5])
@pytest.mark.parametrize("threshold", [0.8, 0.95])
class TestGapAgainstExactOptimum:
    def _problem(self, menu_name, n, threshold):
        bins = TaskBinSet.from_triples(MENUS[menu_name], name=menu_name)
        return SladeProblem.homogeneous(n, threshold, bins)

    def test_opq_within_theoretical_bound(self, menu_name, n, threshold):
        problem = self._problem(menu_name, n, threshold)
        opq = OPQSolver().solve(problem).total_cost
        exact = ExactSolver(max_tasks=6).solve(problem).total_cost
        bound = max(1.0, math.log2(n) + 1.0)
        assert opq <= exact * bound + 1e-9

    def test_opq_close_to_optimum_in_practice(self, menu_name, n, threshold):
        # Empirically the OPQ plans are well within 1.5x of the optimum on
        # these instances — far better than the worst-case bound.
        problem = self._problem(menu_name, n, threshold)
        opq = OPQSolver().solve(problem).total_cost
        exact = ExactSolver(max_tasks=6).solve(problem).total_cost
        assert opq <= exact * 1.5 + 1e-9

    def test_greedy_feasible_and_bounded(self, menu_name, n, threshold):
        problem = self._problem(menu_name, n, threshold)
        greedy = GreedySolver().solve(problem)
        exact = ExactSolver(max_tasks=6).solve(problem).total_cost
        assert greedy.feasible
        # Greedy has no proved guarantee; it stays within 2x on these menus.
        assert greedy.total_cost <= exact * 2.0 + 1e-9
