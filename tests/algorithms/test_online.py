"""Tests for the online (streaming) decomposer."""

import pytest

from repro.algorithms.online import OnlineDecomposer
from repro.algorithms.opq import OPQSolver
from repro.core.errors import InvalidProblemError
from repro.core.problem import SladeProblem
from repro.core.task import AtomicTask, CrowdsourcingTask
from repro.datasets.jelly import jelly_bin_set


@pytest.fixture
def bins():
    return jelly_bin_set(8)


class TestSubmission:
    def test_nothing_emitted_until_block_fills(self, table1_bins):
        decomposer = OnlineDecomposer(table1_bins)
        # OPQ head for t=0.95 on the Table 1 menu covers blocks of 3 tasks.
        assert decomposer.submit(AtomicTask(0, 0.95)) == []
        assert decomposer.submit(AtomicTask(1, 0.95)) == []
        emitted = decomposer.submit(AtomicTask(2, 0.95))
        assert emitted, "third task should complete the block"
        assert decomposer.pending_tasks == 0
        assert decomposer.emitted_tasks == 3

    def test_duplicate_submission_rejected(self, table1_bins):
        decomposer = OnlineDecomposer(table1_bins)
        decomposer.submit(AtomicTask(0, 0.9))
        with pytest.raises(InvalidProblemError):
            decomposer.submit(AtomicTask(0, 0.9))

    def test_submit_many_returns_all_emitted(self, table1_bins):
        decomposer = OnlineDecomposer(table1_bins)
        emitted = decomposer.submit_many(AtomicTask(i, 0.95) for i in range(7))
        assert decomposer.emitted_tasks == 6  # two full blocks of three
        assert decomposer.pending_tasks == 1
        assert len(emitted) > 0

    def test_invalid_granularity_rejected(self, table1_bins):
        with pytest.raises(InvalidProblemError):
            OnlineDecomposer(table1_bins, threshold_granularity=0.0)


class TestFlush:
    def test_flush_covers_all_pending_tasks(self, bins):
        decomposer = OnlineDecomposer(bins)
        decomposer.submit_many(AtomicTask(i, 0.9) for i in range(17))
        decomposer.flush()
        assert decomposer.pending_tasks == 0
        task = CrowdsourcingTask.homogeneous(17, 0.9)
        assert decomposer.plan.is_feasible(task)

    def test_flush_on_empty_stream_is_noop(self, bins):
        decomposer = OnlineDecomposer(bins)
        assert decomposer.flush() == []
        assert decomposer.total_cost == 0.0

    def test_heterogeneous_thresholds_grouped_and_satisfied(self, bins):
        thresholds = [0.85, 0.9, 0.95] * 10
        decomposer = OnlineDecomposer(bins)
        decomposer.submit_many(
            AtomicTask(i, t) for i, t in enumerate(thresholds)
        )
        decomposer.flush()
        task = CrowdsourcingTask.heterogeneous(thresholds)
        assert decomposer.plan.is_feasible(task)
        assert len(decomposer.threshold_groups()) >= 2


class TestRegretAgainstOffline:
    def test_streaming_cost_close_to_offline_opq(self, bins):
        n = 200
        threshold = 0.9
        decomposer = OnlineDecomposer(bins)
        decomposer.submit_many(AtomicTask(i, threshold) for i in range(n))
        decomposer.flush()

        offline = OPQSolver().solve(
            SladeProblem.homogeneous(n, threshold, bins)
        )
        # The stream pays at most one remainder block more than offline.
        assert decomposer.total_cost <= offline.total_cost * 1.15 + 1e-9
        assert decomposer.total_cost >= offline.total_cost - 1e-9

    def test_block_multiples_match_offline_exactly(self, table1_bins):
        # 3k tasks at t=0.95 on the Table 1 menu: streaming emits exactly the
        # offline-optimal blocks.
        n = 9
        decomposer = OnlineDecomposer(table1_bins)
        decomposer.submit_many(AtomicTask(i, 0.95) for i in range(n))
        offline = OPQSolver().solve(
            SladeProblem.homogeneous(n, 0.95, table1_bins)
        )
        assert decomposer.pending_tasks == 0
        assert decomposer.total_cost == pytest.approx(offline.total_cost)


class TestThresholdBucketing:
    def test_bucket_never_rounds_down(self, bins):
        decomposer = OnlineDecomposer(bins, threshold_granularity=0.05)
        decomposer.submit(AtomicTask(0, 0.91))
        decomposer.flush()
        # The single task was planned at a bucket >= its own threshold.
        assert decomposer.plan.reliability_of(0) >= 0.91

    def test_nearby_thresholds_share_a_queue(self, bins):
        decomposer = OnlineDecomposer(bins, threshold_granularity=0.05)
        decomposer.submit(AtomicTask(0, 0.901))
        decomposer.submit(AtomicTask(1, 0.949))
        assert len(decomposer.threshold_groups()) == 1
