"""Tests for the rod-cutting dynamic program (relaxed variant, Section 4.2)."""

import pytest

from repro.algorithms.dp_relaxed import RelaxedDPSolver
from repro.algorithms.exhaustive import ExactSolver
from repro.core.bins import TaskBinSet
from repro.core.errors import InvalidProblemError
from repro.core.problem import SladeProblem


@pytest.fixture
def relaxed_bins() -> TaskBinSet:
    """A menu whose every confidence exceeds the thresholds used below."""
    return TaskBinSet.from_triples(
        [(1, 0.9, 0.10), (2, 0.88, 0.16), (3, 0.86, 0.21), (4, 0.85, 0.25)]
    )


class TestRelaxedDP:
    def test_rejects_unrelaxed_instance(self, table1_bins):
        problem = SladeProblem.homogeneous(4, 0.95, table1_bins)
        with pytest.raises(InvalidProblemError):
            RelaxedDPSolver().solve(problem)

    def test_single_task(self, relaxed_bins):
        problem = SladeProblem.homogeneous(1, 0.8, relaxed_bins)
        result = RelaxedDPSolver().solve(problem)
        assert result.total_cost == pytest.approx(0.10)

    def test_optimal_cover_uses_cheapest_mix(self, relaxed_bins):
        problem = SladeProblem.homogeneous(5, 0.8, relaxed_bins)
        result = RelaxedDPSolver().solve(problem)
        # Best cover of 5 tasks: 4-bin (0.25) + 1-bin (0.10) = 0.35.
        assert result.total_cost == pytest.approx(0.35)
        assert result.feasible

    def test_matches_exhaustive_optimum(self, relaxed_bins):
        problem = SladeProblem.homogeneous(6, 0.8, relaxed_bins)
        dp_cost = RelaxedDPSolver().solve(problem).total_cost
        exact_cost = ExactSolver(max_tasks=6).solve(problem).total_cost
        assert dp_cost == pytest.approx(exact_cost)

    def test_every_task_covered_exactly_once(self, relaxed_bins):
        problem = SladeProblem.homogeneous(11, 0.8, relaxed_bins)
        result = RelaxedDPSolver().solve(problem)
        reliabilities = result.plan.reliabilities()
        assert set(reliabilities) == set(range(11))
        for assignment_count in (
            len(result.plan.assignments_of(task_id)) for task_id in range(11)
        ):
            assert assignment_count == 1

    def test_optimal_cost_metadata_matches_plan(self, relaxed_bins):
        problem = SladeProblem.homogeneous(9, 0.8, relaxed_bins)
        result = RelaxedDPSolver().solve(problem)
        assert result.metadata["optimal_cost"] == pytest.approx(result.total_cost)

    def test_allow_unrelaxed_produces_lower_bound(self, table1_bins):
        problem = SladeProblem.homogeneous(4, 0.95, table1_bins)
        bound = RelaxedDPSolver(allow_unrelaxed=True).solve(problem)
        exact = ExactSolver().solve(problem)
        assert bound.total_cost <= exact.total_cost + 1e-9

    def test_heterogeneous_relaxed_instance(self, relaxed_bins):
        problem = SladeProblem.heterogeneous([0.5, 0.6, 0.7, 0.8], relaxed_bins)
        result = RelaxedDPSolver().solve(problem)
        assert result.feasible
