"""Property-based tests: every solver must produce feasible plans.

Hypothesis generates random bin menus and threshold vectors; regardless of the
instance, each production solver must return a plan in which every atomic task
meets its reliability threshold, and the plan's cost must equal the sum of its
posted bins' costs.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algorithms.baseline import CIPBaselineSolver
from repro.algorithms.greedy import GreedySolver
from repro.algorithms.opq import OPQSolver
from repro.algorithms.opq_extended import OPQExtendedSolver
from repro.core.bins import TaskBinSet
from repro.core.problem import SladeProblem

#: Random bin menus: 1-6 bins with distinct cardinalities in 1..10.
bin_sets = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=10),
        st.floats(min_value=0.35, max_value=0.97),
        st.floats(min_value=0.02, max_value=2.0),
    ),
    min_size=1,
    max_size=6,
    unique_by=lambda triple: triple[0],
).map(TaskBinSet.from_triples)

#: Homogeneous thresholds and task counts.
homogeneous_instances = st.tuples(
    bin_sets,
    st.integers(min_value=1, max_value=40),
    st.floats(min_value=0.5, max_value=0.98),
)

#: Heterogeneous threshold vectors.
heterogeneous_instances = st.tuples(
    bin_sets,
    st.lists(st.floats(min_value=0.5, max_value=0.98), min_size=1, max_size=30),
)

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _check_plan(result, problem):
    plan = result.plan
    assert plan.is_feasible(problem.task)
    assert plan.total_cost == pytest.approx(
        sum(assignment.task_bin.cost for assignment in plan)
    )
    for assignment in plan:
        assert len(assignment.task_ids) <= assignment.task_bin.cardinality


class TestHomogeneousSolversProduceFeasiblePlans:
    @_SETTINGS
    @given(homogeneous_instances)
    def test_greedy(self, instance):
        bins, n, threshold = instance
        problem = SladeProblem.homogeneous(n, threshold, bins)
        _check_plan(GreedySolver().solve(problem), problem)

    @_SETTINGS
    @given(homogeneous_instances)
    def test_opq(self, instance):
        bins, n, threshold = instance
        problem = SladeProblem.homogeneous(n, threshold, bins)
        _check_plan(OPQSolver().solve(problem), problem)

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(homogeneous_instances)
    def test_baseline(self, instance):
        bins, n, threshold = instance
        problem = SladeProblem.homogeneous(n, threshold, bins)
        solver = CIPBaselineSolver(chunk_size=16, seed=0)
        _check_plan(solver.solve(problem), problem)


class TestHeterogeneousSolversProduceFeasiblePlans:
    @_SETTINGS
    @given(heterogeneous_instances)
    def test_greedy(self, instance):
        bins, thresholds = instance
        problem = SladeProblem.heterogeneous(thresholds, bins)
        _check_plan(GreedySolver().solve(problem), problem)

    @_SETTINGS
    @given(heterogeneous_instances)
    def test_opq_extended(self, instance):
        bins, thresholds = instance
        problem = SladeProblem.heterogeneous(thresholds, bins)
        _check_plan(OPQExtendedSolver().solve(problem), problem)


class TestOPQNeverBeatenByItsOwnBlocks:
    @settings(max_examples=25, deadline=None)
    @given(bin_sets, st.integers(min_value=1, max_value=8), st.floats(min_value=0.6, max_value=0.95))
    def test_greedy_and_opq_are_lower_bounded_by_lp_relaxation(self, bins, n, threshold):
        """Both heuristics must cost at least n times the head unit cost.

        Lemma 2 makes ``n * OPQ1.UC`` a lower bound on the optimum, hence on
        every feasible plan.
        """
        from repro.algorithms.opq import build_optimal_priority_queue

        problem = SladeProblem.homogeneous(n, threshold, bins)
        queue = build_optimal_priority_queue(bins, threshold)
        lower_bound = n * queue.head.unit_cost
        assert GreedySolver().solve(problem).total_cost >= lower_bound - 1e-9
        assert OPQSolver().solve(problem).total_cost >= lower_bound - 1e-9
