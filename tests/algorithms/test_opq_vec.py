"""The vectorized Algorithm 2 core: exact equivalence and core selection.

The contract under test is strong on purpose: the numpy core must return
queues *byte-identical* to the pure-Python reference — same elements, same
order, bit-equal unit costs and residuals — on the golden evaluation grid,
under hypothesis-generated menus, under truncation, with pruning disabled,
and when warm-started from a plan-curve seed.  Anything weaker would let the
two cores drift apart silently once one of them is "the fast one".
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algorithms import opq_vec
from repro.algorithms.opq import Combination, build_optimal_priority_queue
from repro.algorithms.opq_vec import (
    CORE_AUTO,
    CORE_ENV_VAR,
    CORE_NUMPY,
    CORE_PYTHON,
    NUMPY_AVAILABLE,
    _lcm_fits_int64,
    build_optimal_priority_queue_vec,
    build_queue,
    resolve_core,
)
from repro.core.bins import TaskBinSet
from repro.core.errors import InfeasiblePlanError
from repro.datasets.jelly import jelly_bin_set
from repro.datasets.smic import smic_bin_set

needs_numpy = pytest.mark.skipif(not NUMPY_AVAILABLE, reason="numpy not importable")

#: The golden grid: both evaluation menus at the paper-trend thresholds.
GOLDEN_GRID = [
    (bins, threshold)
    for bins in (jelly_bin_set(20), smic_bin_set(20))
    for threshold in (0.87, 0.9, 0.95, 0.97, 0.99)
]

_SETTINGS = settings(
    max_examples=40,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

menus = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=0.3, max_value=0.97),
        st.floats(min_value=0.02, max_value=2.0),
    ),
    min_size=1,
    max_size=5,
    unique_by=lambda triple: triple[0],
).map(TaskBinSet.from_triples)

thresholds = st.floats(min_value=0.5, max_value=0.99)


def frontier_bytes(queue):
    """The exact frontier content: counts, LCM, and bit-exact floats."""
    return [
        (c.counts, c.lcm, c.unit_cost.hex(), c.residual.hex()) for c in queue
    ]


def assert_byte_identical(bins, threshold, **kwargs):
    """Both cores agree exactly — including on raising infeasibility."""
    try:
        reference = build_optimal_priority_queue(bins, threshold, **kwargs)
    except InfeasiblePlanError:
        with pytest.raises(InfeasiblePlanError):
            build_optimal_priority_queue_vec(bins, threshold, **kwargs)
        return None
    vectorized = build_optimal_priority_queue_vec(bins, threshold, **kwargs)
    assert frontier_bytes(vectorized) == frontier_bytes(reference)
    assert vectorized.complete == reference.complete
    assert vectorized.threshold == reference.threshold
    return reference


@needs_numpy
class TestExactEquivalence:
    @pytest.mark.parametrize(
        "bins,threshold", GOLDEN_GRID,
        ids=[f"{b.name}-{t}" for b, t in GOLDEN_GRID],
    )
    def test_golden_grid_byte_identity(self, bins, threshold):
        assert_byte_identical(bins, threshold)

    @_SETTINGS
    @given(menus, thresholds)
    def test_random_menus_byte_identity(self, bins, threshold):
        assert_byte_identical(bins, threshold)

    @_SETTINGS
    @given(menus, thresholds, st.integers(min_value=0, max_value=4))
    def test_truncated_builds_agree(self, bins, threshold, cap):
        """Capped enumeration: same frontier, same completeness verdict."""
        assert_byte_identical(bins, threshold, max_assignments=cap)

    @_SETTINGS
    @given(menus, thresholds)
    def test_pruning_ablation_agrees(self, bins, threshold):
        assert_byte_identical(bins, threshold, use_pruning=False)

    def test_stats_present_with_the_documented_keys(self):
        queue = build_optimal_priority_queue_vec(jelly_bin_set(10), 0.9)
        assert set(queue.stats) == {"nodes", "pruned", "inserted", "seeded"}
        assert queue.stats["nodes"] > 0
        assert queue.stats["inserted"] == len(queue)


@needs_numpy
class TestCurveSeeding:
    def seeded_equals_cold(self, bins, target, donor):
        cold = build_optimal_priority_queue_vec(bins, target)
        seed = build_optimal_priority_queue_vec(bins, donor).elements()
        warm = build_optimal_priority_queue_vec(bins, target, seed=seed)
        assert frontier_bytes(warm) == frontier_bytes(cold)
        assert warm.stats["seeded"] > 0

    def test_seed_from_higher_threshold_is_byte_identical(self):
        self.seeded_equals_cold(smic_bin_set(20), target=0.9, donor=0.97)

    def test_seed_from_lower_threshold_is_byte_identical(self):
        self.seeded_equals_cold(smic_bin_set(20), target=0.97, donor=0.9)

    def test_python_core_accepts_the_same_seed(self):
        bins = jelly_bin_set(20)
        seed = build_optimal_priority_queue(bins, 0.95).elements()
        cold = build_optimal_priority_queue(bins, 0.9)
        warm = build_optimal_priority_queue(bins, 0.9, seed=seed)
        assert frontier_bytes(warm) == frontier_bytes(cold)
        assert warm.stats["seeded"] > 0

    def test_foreign_menu_seed_is_ignored(self):
        bins = jelly_bin_set(6)
        other = TaskBinSet.from_triples([(13, 0.9, 0.5)], name="foreign")
        foreign = Combination.from_counts({13: 1}, other)
        cold = build_optimal_priority_queue_vec(bins, 0.9)
        warm = build_optimal_priority_queue_vec(bins, 0.9, seed=[foreign])
        assert frontier_bytes(warm) == frontier_bytes(cold)
        assert warm.stats["seeded"] == 0

    @_SETTINGS
    @given(menus, thresholds, thresholds)
    def test_random_curve_seeding_never_changes_the_frontier(
        self, bins, target, donor
    ):
        try:
            seed = build_optimal_priority_queue_vec(bins, donor).elements()
        except InfeasiblePlanError:
            seed = []
        try:
            cold = build_optimal_priority_queue_vec(bins, target)
        except InfeasiblePlanError:
            with pytest.raises(InfeasiblePlanError):
                build_optimal_priority_queue_vec(bins, target, seed=seed)
            return
        warm = build_optimal_priority_queue_vec(bins, target, seed=seed)
        assert frontier_bytes(warm) == frontier_bytes(cold)


class TestCoreSelection:
    def test_explicit_argument_beats_the_environment(self, monkeypatch):
        monkeypatch.setenv(CORE_ENV_VAR, CORE_NUMPY)
        assert resolve_core(CORE_PYTHON) == CORE_PYTHON

    def test_environment_beats_auto(self, monkeypatch):
        monkeypatch.setenv(CORE_ENV_VAR, CORE_PYTHON)
        assert resolve_core() == CORE_PYTHON
        expected = CORE_NUMPY if NUMPY_AVAILABLE else CORE_PYTHON
        assert resolve_core(CORE_AUTO) == expected

    def test_unknown_core_rejected(self):
        with pytest.raises(ValueError, match="unknown OPQ core"):
            resolve_core("cuda")

    @needs_numpy
    def test_auto_prefers_numpy_when_available(self, monkeypatch):
        monkeypatch.delenv(CORE_ENV_VAR, raising=False)
        assert resolve_core() == CORE_NUMPY

    def test_numpy_degrades_to_python_when_absent(self, monkeypatch):
        monkeypatch.setattr(opq_vec, "np", None)
        monkeypatch.setattr(opq_vec, "NUMPY_AVAILABLE", False)
        assert resolve_core(CORE_NUMPY) == CORE_PYTHON
        assert resolve_core(CORE_AUTO) == CORE_PYTHON
        # The dispatcher must fall back, not crash, on a slim install.
        queue = build_queue(jelly_bin_set(10), 0.9, core=CORE_NUMPY)
        reference = build_optimal_priority_queue(jelly_bin_set(10), 0.9)
        assert frontier_bytes(queue) == frontier_bytes(reference)

    @needs_numpy
    def test_int64_overflow_menus_route_to_python(self):
        """Distinct cardinalities whose product overflows int64 stay exact."""
        primes = (65521, 65519, 65497, 65479)
        bins = TaskBinSet.from_triples(
            [(p, 0.9, 0.5) for p in primes], name="wide"
        )
        assert not _lcm_fits_int64(bins)
        queue = build_queue(bins, 0.7, core=CORE_NUMPY)
        reference = build_optimal_priority_queue(bins, 0.7)
        assert frontier_bytes(queue) == frontier_bytes(reference)

    @needs_numpy
    def test_build_queue_dispatch_matches_both_cores(self):
        bins = smic_bin_set(12)
        via_python = build_queue(bins, 0.93, core=CORE_PYTHON)
        via_numpy = build_queue(bins, 0.93, core=CORE_NUMPY)
        assert frontier_bytes(via_python) == frontier_bytes(via_numpy)
