"""Tests for Combination and OptimalPriorityQueue (Definition 4, Algorithm 2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.opq import (
    Combination,
    OptimalPriorityQueue,
    build_optimal_priority_queue,
)
from repro.core.bins import TaskBin, TaskBinSet
from repro.core.errors import InfeasiblePlanError, InvalidProblemError
from repro.utils.logmath import residual_from_reliability


class TestCombination:
    def test_example6_quantities(self, table1_bins):
        # Comb = {3 x b1, 2 x b2, 1 x b3}: LCM = 6, UC = 0.56.
        comb = Combination.from_counts({1: 3, 2: 2, 3: 1}, table1_bins)
        assert comb.lcm == 6
        assert comb.unit_cost == pytest.approx(0.56)
        assert comb.block_cost == pytest.approx(3.36)

    def test_residual_sums_member_contributions(self, table1_bins):
        comb = Combination.from_counts({3: 2}, table1_bins)
        assert comb.residual == pytest.approx(2 * residual_from_reliability(0.8))

    def test_satisfies_threshold(self, table1_bins):
        comb = Combination.from_counts({3: 2}, table1_bins)
        assert comb.satisfies(0.95)
        assert not comb.satisfies(0.97)

    def test_empty_counts_rejected(self, table1_bins):
        with pytest.raises(InvalidProblemError):
            Combination.from_counts({}, table1_bins)

    def test_unknown_cardinality_rejected(self, table1_bins):
        with pytest.raises(KeyError):
            Combination.from_counts({9: 1}, table1_bins)

    def test_postings_for_full_block(self, table1_bins):
        comb = Combination.from_counts({1: 3, 2: 2, 3: 1}, table1_bins)
        postings = list(comb.postings_for_block(list(range(6))))
        # 3 rounds of six 1-bins + 2 rounds of three 2-bins + 1 round of two
        # 3-bins = 18 + 6 + 2 = 26 postings.
        assert len(postings) == 26
        # Every task appears in 3 + 2 + 1 = 6 postings (Figure 5).
        counts = {i: 0 for i in range(6)}
        for _bin, members in postings:
            for task_id in members:
                counts[task_id] += 1
        assert all(count == 6 for count in counts.values())

    def test_postings_cost_matches_block_cost(self, table1_bins):
        comb = Combination.from_counts({1: 3, 2: 2, 3: 1}, table1_bins)
        postings = list(comb.postings_for_block(list(range(6))))
        total = sum(task_bin.cost for task_bin, _members in postings)
        assert total == pytest.approx(comb.block_cost)

    def test_partial_block_posts_fewer_bins(self, table1_bins):
        comb = Combination.from_counts({3: 2}, table1_bins)
        postings = list(comb.postings_for_block([0]))
        assert len(postings) == 2
        assert all(members == (0,) for _bin, members in postings)

    def test_oversized_block_rejected(self, table1_bins):
        comb = Combination.from_counts({2: 1}, table1_bins)
        with pytest.raises(InvalidProblemError):
            list(comb.postings_for_block([0, 1, 2]))

    def test_quantities_are_cached_at_construction(self, table1_bins):
        comb = Combination.from_counts({1: 3, 2: 2, 3: 1}, table1_bins)
        assert comb.__dict__["_lcm"] == comb.lcm
        assert comb.__dict__["_unit_cost"] == comb.unit_cost
        assert comb.__dict__["_residual"] == comb.residual

    def test_bare_constructor_materialises_quantities_lazily(self, table1_bins):
        # Unpickling old cache payloads restores __dict__ directly, skipping
        # from_counts; the __getattr__ fallback must fill the cache then.
        comb = Combination(((3, 2),), table1_bins)
        assert "_lcm" not in comb.__dict__
        assert comb.lcm == 3
        assert comb.unit_cost == pytest.approx(0.16)
        assert "_residual" in comb.__dict__

    def test_unknown_attribute_still_raises(self, table1_bins):
        comb = Combination.from_counts({3: 2}, table1_bins)
        with pytest.raises(AttributeError):
            _ = comb.nonexistent


class TestOptimalPriorityQueueInvariants:
    def test_insert_keeps_pareto_frontier(self, table1_bins):
        queue = OptimalPriorityQueue(0.95)
        better = Combination.from_counts({3: 2}, table1_bins)   # LCM 3, UC 0.16
        worse = Combination.from_counts({2: 1, 3: 1}, table1_bins)  # LCM 6, UC 0.17
        assert queue.insert(worse)
        assert queue.insert(better)
        # The smaller-LCM, cheaper combination dominates the larger one.
        assert len(queue) == 1
        assert queue.head is better

    def test_dominated_insert_rejected(self, table1_bins):
        queue = OptimalPriorityQueue(0.95)
        queue.insert(Combination.from_counts({3: 2}, table1_bins))
        rejected = Combination.from_counts({2: 1, 3: 1}, table1_bins)
        assert not queue.insert(rejected)

    def test_head_of_empty_queue_raises(self):
        with pytest.raises(InfeasiblePlanError):
            _ = OptimalPriorityQueue(0.9).head

    def test_restricted_to_lcm_filters(self, table1_bins):
        queue = build_optimal_priority_queue(table1_bins, 0.95)
        restricted = queue.restricted_to_lcm(2)
        assert all(comb.lcm <= 2 for comb in restricted)
        # The original queue is untouched.
        assert any(comb.lcm == 3 for comb in queue)

    def test_restricted_to_lcm_propagates_provenance(self, table1_bins):
        """A restriction of a truncated frontier is still truncated."""
        queue = build_optimal_priority_queue(table1_bins, 0.95)
        queue.complete = False
        restricted = queue.restricted_to_lcm(2)
        assert restricted.complete is False
        assert restricted.stats == queue.stats
        # The copy's stats are a snapshot, not a shared dict.
        restricted.stats["nodes"] = -1
        assert queue.stats["nodes"] != -1

    def test_fresh_queue_is_complete_with_empty_stats(self):
        queue = OptimalPriorityQueue(0.9)
        assert queue.complete is True
        assert queue.stats == {}


class TestBuildOptimalPriorityQueue:
    def test_table3_contents(self, table1_bins):
        # Table 3 of the paper: {2xb3}, {2xb2}, {2xb1} with UC 0.16/0.18/0.2.
        queue = build_optimal_priority_queue(table1_bins, 0.95)
        elements = queue.elements()
        assert [comb.lcm for comb in elements] == [3, 2, 1]
        assert [comb.unit_cost for comb in elements] == pytest.approx([0.16, 0.18, 0.2])
        assert [dict(comb.counts) for comb in elements] == [{3: 2}, {2: 2}, {1: 2}]

    def test_table4_contents_for_lower_threshold(self, table1_bins):
        # Table 4 (t = 0.632): single bins of every cardinality.
        queue = build_optimal_priority_queue(table1_bins, 0.632)
        elements = queue.elements()
        assert [dict(comb.counts) for comb in elements] == [{3: 1}, {2: 1}, {1: 1}]
        assert [comb.unit_cost for comb in elements] == pytest.approx([0.08, 0.09, 0.1])

    def test_table5_contents_for_high_threshold(self, table1_bins):
        # Table 5 (t = 0.86): only {1 x b1} survives.
        queue = build_optimal_priority_queue(table1_bins, 0.86)
        elements = queue.elements()
        assert [dict(comb.counts) for comb in elements] == [{1: 1}]
        assert elements[0].unit_cost == pytest.approx(0.1)

    def test_every_element_satisfies_threshold(self, table1_bins):
        queue = build_optimal_priority_queue(table1_bins, 0.97)
        for comb in queue:
            assert comb.satisfies(0.97)

    def test_descending_lcm_ascending_uc(self, table1_bins):
        queue = build_optimal_priority_queue(table1_bins, 0.9)
        elements = queue.elements()
        for earlier, later in zip(elements, elements[1:]):
            assert earlier.lcm > later.lcm
            assert earlier.unit_cost <= later.unit_cost + 1e-12

    def test_head_has_lowest_unit_cost(self, table1_bins):
        # Lemma 2: OPQ_1 yields the lowest unit cost of all combinations.
        queue = build_optimal_priority_queue(table1_bins, 0.95)
        head_uc = queue.head.unit_cost
        assert all(comb.unit_cost >= head_uc - 1e-12 for comb in queue)

    def test_zero_confidence_bins_rejected(self):
        bins = TaskBinSet([TaskBin(1, 0.0, 0.1)])
        with pytest.raises(InfeasiblePlanError):
            build_optimal_priority_queue(bins, 0.9)

    def test_stats_recorded(self, table1_bins):
        queue = build_optimal_priority_queue(table1_bins, 0.95)
        assert queue.stats["nodes"] > 0
        assert queue.stats["inserted"] >= len(queue)

    @settings(deadline=None, max_examples=25)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=8),
                st.floats(min_value=0.3, max_value=0.95),
                st.floats(min_value=0.05, max_value=1.0),
            ),
            min_size=1,
            max_size=6,
            unique_by=lambda t: t[0],
        ),
        st.floats(min_value=0.5, max_value=0.97),
    )
    def test_pareto_frontier_property(self, triples, threshold):
        bins = TaskBinSet.from_triples(triples)
        queue = build_optimal_priority_queue(bins, threshold)
        elements = queue.elements()
        # No element may dominate another (Definition 4, condition 2).
        for i, a in enumerate(elements):
            for j, b in enumerate(elements):
                if i == j:
                    continue
                dominated = b.lcm <= a.lcm and b.unit_cost <= a.unit_cost - 1e-12
                assert not dominated
        # Every element must satisfy the threshold (condition 3).
        assert all(comb.satisfies(threshold) for comb in elements)
