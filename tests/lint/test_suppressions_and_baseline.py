"""Round-trip tests for noqa suppressions, the baseline, and the CLI."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.lint import run_lint
from repro.lint.baseline import (
    BaselineError,
    load_baseline,
    partition,
    save_baseline,
)
from repro.lint.findings import Finding
from repro.lint.suppressions import collect_suppressions

BAD_ASYNC = """
    import time

    async def handler():
        time.sleep(0.1)
    """


def write(tmp_path: Path, source: str, name: str = "sample.py") -> Path:
    target = tmp_path / name
    target.write_text(textwrap.dedent(source))
    return target


class TestNoqa:
    def test_targeted_noqa_suppresses_only_that_code(self, tmp_path):
        target = write(
            tmp_path,
            """
            import time

            async def handler():
                time.sleep(0.1)  # slade: noqa[SLD001]
            """,
        )
        result = run_lint([target], root=tmp_path)
        assert result.new_findings == []
        assert result.suppressed == 1

    def test_noqa_for_a_different_code_does_not_suppress(self, tmp_path):
        target = write(
            tmp_path,
            """
            import time

            async def handler():
                time.sleep(0.1)  # slade: noqa[SLD005]
            """,
        )
        result = run_lint([target], root=tmp_path)
        assert [f.code for f in result.new_findings] == ["SLD001"]
        assert result.suppressed == 0

    def test_blanket_noqa_suppresses_everything_on_the_line(self, tmp_path):
        target = write(
            tmp_path,
            """
            import time

            async def handler():
                time.sleep(0.1)  # slade: noqa
            """,
        )
        result = run_lint([target], root=tmp_path)
        assert result.new_findings == []
        assert result.suppressed == 1

    def test_collector_reads_multiple_codes(self):
        sup = collect_suppressions(
            "x = 1  # slade: noqa[SLD001, SLD003]\n"
        )
        assert sup.is_suppressed(1, "SLD001")
        assert sup.is_suppressed(1, "SLD003")
        assert not sup.is_suppressed(1, "SLD002")


class TestBaseline:
    def test_round_trip_grandfathers_old_findings(self, tmp_path):
        target = write(tmp_path, BAD_ASYNC)
        baseline_path = tmp_path / "baseline.json"

        first = run_lint([target], root=tmp_path)
        assert [f.code for f in first.new_findings] == ["SLD001"]

        save_baseline(baseline_path, first.new_findings)
        second = run_lint([target], baseline_path=baseline_path, root=tmp_path)
        assert second.new_findings == []
        assert [f.code for f in second.grandfathered] == ["SLD001"]
        assert not second.failed

    def test_baseline_survives_line_number_drift(self, tmp_path):
        target = write(tmp_path, BAD_ASYNC)
        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline_path, run_lint([target], root=tmp_path).new_findings)

        # Shift the finding down two lines; identity ignores line numbers.
        write(tmp_path, "\n\n" + textwrap.dedent(BAD_ASYNC))
        result = run_lint([target], baseline_path=baseline_path, root=tmp_path)
        assert result.new_findings == []
        assert len(result.grandfathered) == 1

    def test_new_findings_still_fail_against_a_baseline(self, tmp_path):
        target = write(tmp_path, BAD_ASYNC)
        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline_path, run_lint([target], root=tmp_path).new_findings)

        write(
            tmp_path,
            """
            import time

            async def handler():
                time.sleep(0.1)

            async def second():
                time.sleep(0.2)
            """,
        )
        result = run_lint([target], baseline_path=baseline_path, root=tmp_path)
        assert [f.code for f in result.new_findings] == ["SLD001"]
        assert result.failed

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"version": 99}))
        with pytest.raises(BaselineError):
            load_baseline(bad)

    def test_partition_is_count_aware(self):
        finding = Finding(path="a.py", line=3, code="SLD001", message="m")
        twin = Finding(path="a.py", line=9, code="SLD001", message="m")
        baseline = {finding.identity: 1}
        new, grandfathered = partition([finding, twin], baseline)
        assert len(grandfathered) == 1
        assert len(new) == 1


class TestCli:
    def test_lint_subcommand_exit_codes(self, tmp_path, capsys):
        clean = write(tmp_path, "x = 1\n", name="clean.py")
        assert cli_main(["lint", str(clean), "--no-baseline"]) == 0

        dirty = write(tmp_path, BAD_ASYNC, name="dirty.py")
        assert cli_main(["lint", str(dirty), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "SLD001" in out

    def test_write_baseline_then_gate_passes(self, tmp_path, capsys):
        dirty = write(tmp_path, BAD_ASYNC, name="dirty.py")
        baseline = tmp_path / "baseline.json"
        assert (
            cli_main(
                ["lint", str(dirty), "--baseline", str(baseline),
                 "--write-baseline"]
            )
            == 0
        )
        assert baseline.exists()
        assert (
            cli_main(["lint", str(dirty), "--baseline", str(baseline)]) == 0
        )

    def test_json_format_is_machine_readable(self, tmp_path, capsys):
        dirty = write(tmp_path, BAD_ASYNC, name="dirty.py")
        assert cli_main(["lint", str(dirty), "--no-baseline",
                         "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["kind"] == "lint_report"
        assert report["new_findings"][0]["code"] == "SLD001"


class TestRepoIsClean:
    def test_src_tree_has_no_new_findings(self):
        repo_root = Path(__file__).resolve().parents[2]
        result = run_lint(
            [repo_root / "src" / "repro"],
            baseline_path=repo_root / "lint-baseline.json",
            root=repo_root,
        )
        assert result.new_findings == []
