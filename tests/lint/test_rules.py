"""Fixture-driven tests for every SLD lint rule.

Each rule gets a known-bad fixture (the finding must fire, with the right
code on the right line) and a known-good fixture (no false positives on
the safe idioms the rule documents).  Fixtures are written to ``tmp_path``
so the analyses see ordinary standalone modules.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint import run_lint


def lint_source(
    tmp_path: Path,
    source: str,
    *,
    filename: str = "sample.py",
    select: "list[str] | None" = None,
):
    target = tmp_path / filename
    target.write_text(textwrap.dedent(source))
    return run_lint([target], select=select, root=tmp_path)


def codes_and_lines(result):
    return [(f.code, f.line) for f in result.new_findings]


class TestSLD001BlockingInAsync:
    def test_direct_time_sleep_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import time

            async def handler():
                time.sleep(0.1)
            """,
            select=["SLD001"],
        )
        assert codes_and_lines(result) == [("SLD001", 5)]
        assert "time.sleep" in result.new_findings[0].message

    def test_transitively_blocking_helper_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import time

            def warm_up():
                time.sleep(1.0)

            async def handler():
                warm_up()
            """,
            select=["SLD001"],
        )
        assert codes_and_lines(result) == [("SLD001", 8)]
        assert "time.sleep" in result.new_findings[0].message

    def test_blocking_call_through_self_attribute_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import sqlite3

            class Store:
                def __init__(self, path):
                    self._conn = sqlite3.connect(path)

                def save(self, key):
                    self._conn.execute("insert into t values (?)", (key,))

            class Server:
                def __init__(self):
                    self.store = Store(":memory:")

                async def handle(self, key):
                    self.store.save(key)
            """,
            select=["SLD001"],
        )
        assert codes_and_lines(result) == [("SLD001", 16)]

    def test_awaited_and_offloaded_calls_stay_silent(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import asyncio
            import time

            def warm_up():
                time.sleep(1.0)

            async def fetch():
                return 1

            async def handler():
                await fetch()
                await asyncio.get_running_loop().run_in_executor(None, warm_up)
                await asyncio.sleep(0.01)
            """,
            select=["SLD001"],
        )
        assert codes_and_lines(result) == []

    def test_nested_definitions_do_not_fire(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import time

            async def handler():
                def later():
                    time.sleep(1.0)
                return later
            """,
            select=["SLD001"],
        )
        assert codes_and_lines(result) == []


class TestSLD002FailOpen:
    def test_unguarded_socket_call_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import socket

            class LeakyBackend:
                def get(self, key):
                    sock = socket.create_connection(("host", 1))
                    return sock.recv(16)

                def put(self, key, value):
                    return None
            """,
            filename="remote.py",
            select=["SLD002"],
        )
        assert ("SLD002", 5) in codes_and_lines(result)
        assert "OSError" in result.new_findings[0].message

    def test_fail_open_tuple_handler_is_recognised(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import socket

            _FAIL_OPEN_ERRORS = (OSError, EOFError)

            class SafeBackend:
                def get(self, key):
                    try:
                        sock = socket.create_connection(("host", 1))
                        return sock.recv(16)
                    except _FAIL_OPEN_ERRORS:
                        return None

                def put(self, key, value):
                    return None
            """,
            filename="remote.py",
            select=["SLD002"],
        )
        assert codes_and_lines(result) == []

    def test_other_modules_are_out_of_scope(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import socket

            class LocalBackend:
                def get(self, key):
                    sock = socket.create_connection(("host", 1))
                    return sock.recv(16)

                def put(self, key, value):
                    return None
            """,
            filename="memory_helpers.py",
            select=["SLD002"],
        )
        assert codes_and_lines(result) == []


class TestSLD003LockDiscipline:
    BAD = """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._total = 0

            def add(self, n):
                with self._lock:
                    self._total += n

            def peek(self):
                return self._total
        """

    def test_unlocked_read_fires(self, tmp_path):
        result = lint_source(tmp_path, self.BAD, select=["SLD003"])
        assert codes_and_lines(result) == [("SLD003", 14)]
        assert "_total" in result.new_findings[0].message

    def test_locked_access_everywhere_is_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._total = 0

                def add(self, n):
                    with self._lock:
                        self._total += n

                def peek(self):
                    with self._lock:
                        return self._total
            """,
            select=["SLD003"],
        )
        assert codes_and_lines(result) == []

    def test_helper_called_only_under_lock_is_clean(self, tmp_path):
        # Mirrors AdmissionController._state_for: the helper itself has no
        # lexical lock, but every call site already holds it.
        result = lint_source(
            tmp_path,
            """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def register(self, key, value):
                    with self._lock:
                        self._store(key, value)

                def _store(self, key, value):
                    self._items[key] = value
            """,
            select=["SLD003"],
        )
        assert codes_and_lines(result) == []

    def test_constructor_writes_are_exempt(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._value = None

                def set(self, value):
                    with self._lock:
                        self._value = value
            """,
            select=["SLD003"],
        )
        assert codes_and_lines(result) == []


class TestSLD004TelemetryNames:
    def test_unknown_counter_name_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            class Engine:
                def __init__(self, telemetry):
                    self.telemetry = telemetry

                def record(self):
                    self.telemetry.increment("cache.hitz")
            """,
            select=["SLD004"],
        )
        assert codes_and_lines(result) == [("SLD004", 7)]
        assert "cache.hitz" in result.new_findings[0].message

    def test_convention_violation_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            class Engine:
                def __init__(self, telemetry):
                    self.telemetry = telemetry

                def record(self):
                    self.telemetry.increment("CacheHits")
            """,
            select=["SLD004"],
        )
        assert codes_and_lines(result) == [("SLD004", 7)]
        assert "convention" in result.new_findings[0].message

    def test_inventory_names_and_dynamic_prefixes_pass(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            class Engine:
                def __init__(self, telemetry):
                    self.telemetry = telemetry

                def record(self, status):
                    self.telemetry.increment("cache.hits")
                    self.telemetry.observe("planner.batch_size", 4)
                    self.telemetry.increment(f"http.responses.{status}")
            """,
            select=["SLD004"],
        )
        assert codes_and_lines(result) == []

    def test_unregistered_dynamic_prefix_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            class Engine:
                def __init__(self, telemetry):
                    self.telemetry = telemetry

                def record(self, shard):
                    self.telemetry.increment(f"mystery.shard.{shard}.hits")
            """,
            select=["SLD004"],
        )
        assert codes_and_lines(result) == [("SLD004", 7)]

    def test_forwarded_name_variables_are_skipped(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            class Engine:
                def __init__(self, telemetry):
                    self.telemetry = telemetry

                def _count(self, name):
                    self.telemetry.increment(name)
            """,
            select=["SLD004"],
        )
        assert codes_and_lines(result) == []


class TestSLD005LostTasks:
    def test_discarded_create_task_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import asyncio

            async def kick_off(work):
                asyncio.create_task(work())
            """,
            select=["SLD005"],
        )
        assert codes_and_lines(result) == [("SLD005", 5)]
        assert "create_task" in result.new_findings[0].message

    def test_stored_and_awaited_tasks_are_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import asyncio

            class Service:
                def start(self, work):
                    self._task = asyncio.create_task(work())

            async def gather_all(work, tasks):
                tasks.append(asyncio.create_task(work()))
                await asyncio.gather(*tasks)
            """,
            select=["SLD005"],
        )
        assert codes_and_lines(result) == []


class TestParseErrors:
    def test_syntax_error_becomes_sld000(self, tmp_path):
        result = lint_source(tmp_path, "def broken(:\n    pass\n")
        assert [f.code for f in result.new_findings] == ["SLD000"]


class TestSelection:
    def test_unknown_code_raises(self, tmp_path):
        from repro.lint.runner import LintError

        with pytest.raises(LintError, match="SLD999"):
            lint_source(tmp_path, "x = 1\n", select=["SLD999"])
