"""Tests for the analysis package (bounds and plan statistics)."""

import pytest

from repro.algorithms.exhaustive import ExactSolver
from repro.algorithms.greedy import GreedySolver
from repro.algorithms.opq import OPQSolver
from repro.analysis.bounds import bounds, lower_bound, naive_upper_bound, optimality_gap
from repro.analysis.plan_stats import compare_plans, describe_plan, format_comparison
from repro.core.problem import SladeProblem
from repro.datasets.jelly import jelly_bin_set


class TestBounds:
    def test_lower_bound_below_exact_optimum(self, example4_problem):
        exact = ExactSolver().solve(example4_problem).total_cost
        assert lower_bound(example4_problem) <= exact + 1e-9

    def test_lower_bound_on_running_example_value(self, example4_problem):
        # Head of the Table 3 OPQ has unit cost 0.16, so the bound is 4 * 0.16.
        assert lower_bound(example4_problem) == pytest.approx(0.64)

    def test_naive_upper_bound_is_feasible_cost(self, example4_problem):
        # Two singleton bins per task: 4 * 2 * 0.1 = 0.8.
        assert naive_upper_bound(example4_problem) == pytest.approx(0.8)

    def test_bounds_bracket_every_solver(self, example4_problem):
        box = bounds(example4_problem)
        for solver in (GreedySolver(), OPQSolver(), ExactSolver()):
            cost = solver.solve(example4_problem).total_cost
            assert box.contains(cost)

    def test_spread_reports_saving_opportunity(self, example4_problem):
        box = bounds(example4_problem)
        assert box.spread == pytest.approx(0.8 / 0.64)

    def test_heterogeneous_lower_bound(self, heterogeneous_example_problem):
        bound = lower_bound(heterogeneous_example_problem)
        from repro.algorithms.opq_extended import OPQExtendedSolver

        plan_cost = OPQExtendedSolver().solve(heterogeneous_example_problem).total_cost
        assert bound <= plan_cost + 1e-9

    def test_optimality_gap_of_opq_within_bound(self):
        problem = SladeProblem.homogeneous(300, 0.9, jelly_bin_set(10))
        result = OPQSolver().solve(problem)
        gap = optimality_gap(result.plan, problem)
        assert 1.0 - 1e-9 <= gap <= 1.2

    def test_optimality_gap_accepts_precomputed_bound(self, example4_problem):
        plan = OPQSolver().solve(example4_problem).plan
        gap = optimality_gap(plan, example4_problem, precomputed_lower=0.64)
        assert gap == pytest.approx(0.68 / 0.64)


class TestPlanStatistics:
    def test_describe_plan_basics(self, example4_problem):
        plan = OPQSolver().solve(example4_problem).plan
        stats = describe_plan(plan, example4_problem)
        assert stats.total_cost == pytest.approx(0.68)
        assert stats.postings == len(plan)
        assert stats.feasible
        assert stats.min_slack >= 0.0
        assert stats.cost_per_task == pytest.approx(0.17)

    def test_cost_by_cardinality_sums_to_total(self, example4_problem):
        plan = GreedySolver().solve(example4_problem).plan
        stats = describe_plan(plan, example4_problem)
        assert sum(stats.cost_by_cardinality.values()) == pytest.approx(stats.total_cost)

    def test_assignments_per_task_range(self, example4_problem):
        plan = OPQSolver().solve(example4_problem).plan
        stats = describe_plan(plan, example4_problem)
        assert stats.assignments_per_task["min"] >= 1.0
        assert stats.assignments_per_task["max"] >= stats.assignments_per_task["mean"]

    def test_infeasible_plan_has_negative_slack(self, example4_problem, table1_bins):
        from repro.core.plan import DecompositionPlan

        plan = DecompositionPlan()
        plan.add(table1_bins[1], (0,))
        stats = describe_plan(plan, example4_problem)
        assert not stats.feasible
        assert stats.min_slack < 0.0

    def test_as_dict_round_trip(self, example4_problem):
        plan = OPQSolver().solve(example4_problem).plan
        info = describe_plan(plan, example4_problem).as_dict()
        assert info["feasible"] is True
        assert "assignments_mean" in info


class TestComparison:
    def test_compare_plans_orders_and_labels(self, example4_problem):
        plans = {
            "opq": OPQSolver().solve(example4_problem).plan,
            "greedy": GreedySolver().solve(example4_problem).plan,
        }
        comparison = compare_plans(plans, example4_problem)
        assert list(comparison) == ["opq", "greedy"]
        assert comparison["opq"].total_cost <= comparison["greedy"].total_cost

    def test_format_comparison_is_a_table(self, example4_problem):
        plans = {
            "opq": OPQSolver().solve(example4_problem).plan,
            "greedy": GreedySolver().solve(example4_problem).plan,
        }
        text = format_comparison(compare_plans(plans, example4_problem))
        assert "cost/task" in text
        assert "opq" in text and "greedy" in text
