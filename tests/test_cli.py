"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestSolveCommand:
    def test_homogeneous_solve(self, capsys):
        exit_code = main([
            "solve", "--solver", "opq", "--dataset", "jelly",
            "--n", "200", "--threshold", "0.9", "--max-cardinality", "10",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "total cost" in out
        assert "feasible          : True" in out

    def test_heterogeneous_solve(self, capsys):
        exit_code = main([
            "solve", "--solver", "opq-extended", "--dataset", "jelly",
            "--n", "150", "--heterogeneous", "--mu", "0.9", "--sigma", "0.02",
            "--max-cardinality", "8",
        ])
        assert exit_code == 0
        assert "heterogeneous" in capsys.readouterr().out

    def test_greedy_on_smic(self, capsys):
        exit_code = main([
            "solve", "--solver", "greedy", "--dataset", "smic",
            "--n", "100", "--max-cardinality", "6",
        ])
        assert exit_code == 0
        assert "greedy" in capsys.readouterr().out

    def test_unknown_solver_rejected(self):
        with pytest.raises(SystemExit):
            main(["solve", "--solver", "magic"])


class TestFigureCommand:
    def test_cost_figure(self, capsys):
        exit_code = main(["figure", "fig6e", "--n", "100"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "|B|" in out
        assert "opq" in out

    def test_motivation_figure(self, capsys):
        exit_code = main(["figure", "fig3c"])
        assert exit_code == 0
        assert "difficulty" in capsys.readouterr().out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestBatchCommand:
    def test_batch_grid_with_cache_stats(self, capsys):
        exit_code = main([
            "batch", "--dataset", "jelly", "--solver", "opq",
            "--n-values", "50,100", "--thresholds", "0.9,0.95",
            "--max-cardinality", "8", "--repeat", "2",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "8 instance(s)" in out
        assert "cache hits/misses" in out
        # 8 instances over 2 distinct thresholds -> 6 hits, 2 misses.
        assert "6/2" in out
        assert "all feasible       : True" in out

    def test_batch_thread_executor(self, capsys):
        exit_code = main([
            "batch", "--n-values", "40,80", "--thresholds", "0.9",
            "--max-cardinality", "6", "--executor", "thread", "--workers", "2",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "executor           : thread" in out

    def test_batch_invalid_grid_rejected(self):
        with pytest.raises(SystemExit):
            main(["batch", "--n-values", "ten"])
        with pytest.raises(SystemExit):
            main(["batch", "--thresholds", ""])
        with pytest.raises(SystemExit):
            main(["batch", "--n-values", "10", "--repeat", "0"])


class TestCalibrateCommand:
    def test_jelly_calibration(self, capsys):
        exit_code = main(["calibrate", "--dataset", "jelly", "--max-cardinality", "4"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "probe spend" in out
        assert "cardinality" in out

    def test_smic_calibration(self, capsys):
        exit_code = main(["calibrate", "--dataset", "smic", "--max-cardinality", "3"])
        assert exit_code == 0
        assert "confidence" in capsys.readouterr().out


class TestArgumentParsing:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
