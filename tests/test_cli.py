"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.io.serialization import solve_request_to_dict
from repro.service import SolveRequest


class TestSolveCommand:
    def test_homogeneous_solve(self, capsys):
        exit_code = main([
            "solve", "--solver", "opq", "--dataset", "jelly",
            "--n", "200", "--threshold", "0.9", "--max-cardinality", "10",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "total cost" in out
        assert "feasible          : True" in out

    def test_heterogeneous_solve(self, capsys):
        exit_code = main([
            "solve", "--solver", "opq-extended", "--dataset", "jelly",
            "--n", "150", "--heterogeneous", "--mu", "0.9", "--sigma", "0.02",
            "--max-cardinality", "8",
        ])
        assert exit_code == 0
        assert "heterogeneous" in capsys.readouterr().out

    def test_greedy_on_smic(self, capsys):
        exit_code = main([
            "solve", "--solver", "greedy", "--dataset", "smic",
            "--n", "100", "--max-cardinality", "6",
        ])
        assert exit_code == 0
        assert "greedy" in capsys.readouterr().out

    def test_unknown_solver_rejected(self):
        with pytest.raises(SystemExit):
            main(["solve", "--solver", "magic"])


class TestFigureCommand:
    def test_cost_figure(self, capsys):
        exit_code = main(["figure", "fig6e", "--n", "100"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "|B|" in out
        assert "opq" in out

    def test_motivation_figure(self, capsys):
        exit_code = main(["figure", "fig3c"])
        assert exit_code == 0
        assert "difficulty" in capsys.readouterr().out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestBatchCommand:
    def test_batch_grid_with_cache_stats(self, capsys):
        exit_code = main([
            "batch", "--dataset", "jelly", "--solver", "opq",
            "--n-values", "50,100", "--thresholds", "0.9,0.95",
            "--max-cardinality", "8", "--repeat", "2",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "8 instance(s)" in out
        assert "cache hits/misses" in out
        # 8 instances over 2 distinct thresholds -> 6 hits, 2 misses.
        assert "6/2" in out
        assert "all feasible       : True" in out

    def test_batch_thread_executor(self, capsys):
        exit_code = main([
            "batch", "--n-values", "40,80", "--thresholds", "0.9",
            "--max-cardinality", "6", "--executor", "thread", "--workers", "2",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "executor           : thread" in out

    def test_batch_invalid_grid_rejected(self):
        with pytest.raises(SystemExit):
            main(["batch", "--n-values", "ten"])
        with pytest.raises(SystemExit):
            main(["batch", "--thresholds", ""])
        with pytest.raises(SystemExit):
            main(["batch", "--n-values", "10", "--repeat", "0"])


class TestServeCommand:
    @staticmethod
    def _write_requests(path, lines):
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_serves_requests_from_file(self, tmp_path, capsys, example4_problem):
        request_line = json.dumps(
            solve_request_to_dict(SolveRequest(problem=example4_problem))
        )
        input_path = self._write_requests(
            tmp_path / "requests.jsonl", [request_line, request_line]
        )
        exit_code = main(["serve", "--input", input_path])
        assert exit_code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        responses = [json.loads(line) for line in lines]
        assert len(responses) == 2
        assert all(r["kind"] == "solve_response" for r in responses)
        assert all(r["ok"] for r in responses)
        assert responses[0]["cache"] == "miss"
        assert responses[1]["cache"] == "hit"
        assert responses[0]["plan"] is not None

    def test_inline_request_form_and_no_plans(self, tmp_path, capsys):
        line = json.dumps({
            "kind": "solve_request", "version": 1,
            "n": 20, "threshold": 0.9,
            "bins": [[1, 0.9, 0.10], [2, 0.85, 0.18], [3, 0.8, 0.24]],
        })
        input_path = self._write_requests(tmp_path / "requests.jsonl", [line])
        exit_code = main(["serve", "--input", input_path, "--no-plans"])
        assert exit_code == 0
        (response,) = [
            json.loads(line) for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert response["ok"]
        assert response["plan"] is None
        assert response["total_cost"] > 0

    def test_bad_lines_answered_with_error_envelopes(self, tmp_path, capsys,
                                                     example4_problem):
        good = json.dumps(
            solve_request_to_dict(SolveRequest(problem=example4_problem))
        )
        input_path = self._write_requests(
            tmp_path / "requests.jsonl",
            ["not json", '{"kind": "wrong", "version": 1}', good],
        )
        exit_code = main(["serve", "--input", input_path])
        assert exit_code == 0
        responses = [
            json.loads(line) for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert [r["ok"] for r in responses] == [False, False, True]
        assert responses[0]["error"]["type"] == "JSONDecodeError"
        assert responses[1]["error"]["type"] == "SerializationError"
        assert responses[0]["request_id"] == "line-1"

    def test_sqlite_cache_warm_across_invocations(self, tmp_path, capsys,
                                                  example4_problem):
        request_line = json.dumps(
            solve_request_to_dict(SolveRequest(problem=example4_problem))
        )
        input_path = self._write_requests(tmp_path / "requests.jsonl", [request_line])
        cache_spec = f"sqlite:{tmp_path / 'plans.db'}"

        assert main(["serve", "--input", input_path, "--cache", cache_spec]) == 0
        first = json.loads(capsys.readouterr().out.strip())
        assert first["cache"] == "miss"

        assert main(["serve", "--input", input_path, "--cache", cache_spec]) == 0
        second = json.loads(capsys.readouterr().out.strip())
        assert second["cache"] == "hit"

    def test_stats_flag_reports_to_stderr(self, tmp_path, capsys, example4_problem):
        request_line = json.dumps(
            solve_request_to_dict(SolveRequest(problem=example4_problem))
        )
        input_path = self._write_requests(tmp_path / "requests.jsonl", [request_line])
        exit_code = main(["serve", "--input", input_path, "--stats"])
        assert exit_code == 0
        assert "cache hits/misses" in capsys.readouterr().err

    @pytest.mark.parametrize("core", ["python", "numpy"])
    def test_opq_core_flag_serves_identical_answers(self, tmp_path, capsys,
                                                    example4_problem, core):
        request_line = json.dumps(
            solve_request_to_dict(SolveRequest(problem=example4_problem))
        )
        input_path = self._write_requests(tmp_path / "requests.jsonl", [request_line])
        exit_code = main(["serve", "--input", input_path, "--opq-core", core])
        assert exit_code == 0
        (response,) = [
            json.loads(line) for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert response["ok"]
        # The cores are byte-identical, so the priced plan must not depend
        # on which one served the request.
        baseline = main(["serve", "--input", input_path, "--opq-core", "python"])
        assert baseline == 0
        (again,) = [
            json.loads(line) for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert again["total_cost"] == response["total_cost"]


class TestProfileCommand:
    def test_profile_prints_timing_and_cumulative_table(self, capsys):
        exit_code = main([
            "profile", "--dataset", "jelly", "--thresholds", "0.9,0.95",
            "--max-cardinality", "8", "--repeat", "1", "--top", "5",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "threshold" in out and "build (ms)" in out
        assert "cumtime" in out
        assert "core               :" in out

    def test_profile_with_explicit_python_core(self, capsys):
        exit_code = main([
            "profile", "--core", "python", "--thresholds", "0.9",
            "--max-cardinality", "6", "--repeat", "1", "--top", "3",
        ])
        assert exit_code == 0
        assert "core               : python" in capsys.readouterr().out

    def test_profile_rejects_bad_repeat(self):
        exit_code = main([
            "profile", "--thresholds", "0.9", "--repeat", "0",
        ])
        assert exit_code == 2

    def test_profile_rejects_bad_threshold_grid(self):
        with pytest.raises(SystemExit):
            main(["profile", "--thresholds", "not-a-number"])


class TestErrorHandling:
    """Library-level failures exit with code 2 and a one-line message."""

    def test_slade_error_exits_2_without_traceback(self, capsys):
        exit_code = main(["solve", "--max-cardinality", "0"])
        assert exit_code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert "Traceback" not in captured.err

    def test_bad_cache_spec_exits_2(self, capsys):
        exit_code = main(["serve", "--cache", "bogus", "--input", "/dev/null"])
        assert exit_code == 2
        assert "cache backend spec" in capsys.readouterr().err

    def test_non_positive_cache_bound_exits_2(self, capsys):
        exit_code = main(["serve", "--cache", "memory:0", "--input", "/dev/null"])
        assert exit_code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert "Traceback" not in captured.err

    def test_missing_input_file_exits_2(self, tmp_path, capsys):
        exit_code = main(["serve", "--input", str(tmp_path / "missing.jsonl")])
        assert exit_code == 2
        captured = capsys.readouterr()
        assert "cannot open --input file" in captured.err
        assert "Traceback" not in captured.err


class TestCalibrateCommand:
    def test_jelly_calibration(self, capsys):
        exit_code = main(["calibrate", "--dataset", "jelly", "--max-cardinality", "4"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "probe spend" in out
        assert "cardinality" in out

    def test_smic_calibration(self, capsys):
        exit_code = main(["calibrate", "--dataset", "smic", "--max-cardinality", "3"])
        assert exit_code == 0
        assert "confidence" in capsys.readouterr().out


class TestArgumentParsing:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
