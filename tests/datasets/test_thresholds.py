"""Tests for reliability-threshold generators."""

import numpy as np
import pytest

from repro.core.errors import InvalidProblemError
from repro.datasets.thresholds import (
    constant_thresholds,
    heavy_tailed_thresholds,
    normal_thresholds,
    uniform_thresholds,
)


class TestConstantThresholds:
    def test_length_and_value(self):
        values = constant_thresholds(100, 0.92)
        assert len(values) == 100
        assert set(values) == {0.92}

    def test_invalid_threshold_rejected(self):
        with pytest.raises(InvalidProblemError):
            constant_thresholds(10, 1.0)

    def test_invalid_n_rejected(self):
        with pytest.raises(InvalidProblemError):
            constant_thresholds(0, 0.9)


class TestNormalThresholds:
    def test_mean_close_to_mu(self):
        values = normal_thresholds(5000, mu=0.9, sigma=0.03, seed=0)
        assert np.mean(values) == pytest.approx(0.9, abs=0.005)

    def test_spread_grows_with_sigma(self):
        tight = np.std(normal_thresholds(5000, sigma=0.01, seed=1))
        wide = np.std(normal_thresholds(5000, sigma=0.05, seed=1))
        assert wide > tight

    def test_values_respect_clip(self):
        values = normal_thresholds(1000, mu=0.99, sigma=0.2, seed=2)
        assert all(0.5 <= v <= 0.995 for v in values)

    def test_deterministic_for_seed(self):
        assert normal_thresholds(10, seed=3) == normal_thresholds(10, seed=3)

    def test_negative_sigma_rejected(self):
        with pytest.raises(InvalidProblemError):
            normal_thresholds(10, sigma=-0.1)

    def test_invalid_clip_rejected(self):
        with pytest.raises(InvalidProblemError):
            normal_thresholds(10, clip=(0.9, 0.5))


class TestUniformThresholds:
    def test_values_in_range(self):
        values = uniform_thresholds(1000, low=0.8, high=0.95, seed=0)
        assert all(0.8 <= v <= 0.95 for v in values)

    def test_invalid_range_rejected(self):
        with pytest.raises(InvalidProblemError):
            uniform_thresholds(10, low=0.9, high=0.8)


class TestHeavyTailedThresholds:
    def test_most_mass_near_mu(self):
        values = heavy_tailed_thresholds(5000, mu=0.9, seed=0)
        assert np.median(values) == pytest.approx(0.92, abs=0.03)

    def test_tail_produces_demanding_tasks(self):
        values = heavy_tailed_thresholds(5000, mu=0.9, seed=1)
        assert max(values) > 0.97

    def test_values_respect_clip(self):
        values = heavy_tailed_thresholds(1000, mu=0.9, seed=2)
        assert all(0.5 <= v <= 0.995 for v in values)

    def test_invalid_exponent_rejected(self):
        with pytest.raises(InvalidProblemError):
            heavy_tailed_thresholds(10, tail_exponent=1.0)
