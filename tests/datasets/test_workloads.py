"""Tests for large-scale task workload generators."""

import pytest

from repro.core.errors import InvalidProblemError
from repro.datasets.workloads import make_fishing_line_workload, make_workload


class TestMakeWorkload:
    def test_size_and_threshold(self):
        task = make_workload(50, threshold=0.92, seed=0)
        assert len(task) == 50
        assert task.is_homogeneous
        assert task[0].threshold == 0.92

    def test_heterogeneous_thresholds(self):
        task = make_workload(3, thresholds=[0.8, 0.9, 0.95], seed=0)
        assert task.thresholds == [0.8, 0.9, 0.95]

    def test_threshold_length_mismatch_rejected(self):
        with pytest.raises(InvalidProblemError):
            make_workload(3, thresholds=[0.8, 0.9])

    def test_ground_truth_rate(self):
        task = make_workload(4000, positive_rate=0.25, seed=1)
        positives = sum(1 for t in task if t.payload["truth"])
        assert positives / len(task) == pytest.approx(0.25, abs=0.03)

    def test_deterministic_for_seed(self):
        first = [t.payload["truth"] for t in make_workload(100, seed=5)]
        second = [t.payload["truth"] for t in make_workload(100, seed=5)]
        assert first == second

    def test_invalid_positive_rate_rejected(self):
        with pytest.raises(InvalidProblemError):
            make_workload(10, positive_rate=1.5)

    def test_invalid_n_rejected(self):
        with pytest.raises(InvalidProblemError):
            make_workload(0)


class TestFishingLineWorkload:
    def test_defaults(self):
        task = make_fishing_line_workload(n=200)
        assert len(task) == 200
        assert task[0].threshold == 0.95
        assert task.name == "fishing-line-discovery"

    def test_positives_are_rare(self):
        task = make_fishing_line_workload(n=5000, seed=1)
        positives = sum(1 for t in task if t.payload["truth"])
        assert positives / len(task) < 0.05
