"""Tests for bin profiles, market cost curves and dataset profiles."""

import pytest

from repro.core.errors import InvalidBinError
from repro.datasets.profiles import BinProfile, DatasetProfile, MarketCostCurve


@pytest.fixture
def profile() -> BinProfile:
    return BinProfile(
        cost_per_bin=0.10,
        base_confidence=0.98,
        floor_confidence=0.78,
        decay=0.072,
        max_in_time_cardinality=30,
    )


@pytest.fixture
def cost_curve() -> MarketCostCurve:
    return MarketCostCurve(
        base_rate_per_minute=0.39,
        reference_cost=0.05,
        elasticity=1.4,
        minutes_per_question=1.0,
        assignments=10,
        response_time_minutes=40.0,
    )


class TestBinProfile:
    def test_confidence_anchored_at_cardinality_one(self, profile):
        assert profile.confidence(1) == pytest.approx(0.98)

    def test_confidence_decreases_towards_floor(self, profile):
        values = [profile.confidence(l) for l in range(1, 60)]
        assert all(a >= b for a, b in zip(values, values[1:]))
        assert values[-1] >= 0.78

    def test_cost_per_task_decreases(self, profile):
        assert profile.cost_per_task(10) < profile.cost_per_task(2)

    def test_in_time_respects_limit(self, profile):
        assert profile.in_time(30)
        assert not profile.in_time(31)

    def test_task_bin_materialisation(self, profile):
        task_bin = profile.task_bin(5)
        assert task_bin.cardinality == 5
        assert task_bin.cost == 0.10
        assert task_bin.confidence == pytest.approx(profile.confidence(5))

    def test_invalid_cardinality_rejected(self, profile):
        with pytest.raises(ValueError):
            profile.confidence(0)

    def test_floor_above_base_rejected(self):
        with pytest.raises(InvalidBinError):
            BinProfile(0.1, 0.7, 0.8, 0.05, 10)


class TestMarketCostCurve:
    def test_cost_increases_with_cardinality(self, cost_curve):
        costs = [cost_curve.cost(l) for l in range(1, 31)]
        assert all(a <= b for a, b in zip(costs, costs[1:]))

    def test_per_task_cost_decreases_overall(self, cost_curve):
        assert cost_curve.cost(20) / 20 < cost_curve.cost(1)

    def test_costs_are_whole_cents(self, cost_curve):
        for l in range(1, 31):
            cents = cost_curve.cost(l) * 100
            assert cents == pytest.approx(round(cents))

    def test_minimum_cost_floor(self):
        curve = MarketCostCurve(
            base_rate_per_minute=100.0, reference_cost=0.05, elasticity=1.0,
            minutes_per_question=0.1, assignments=1, response_time_minutes=60.0,
            minimum_cost=0.02,
        )
        assert curve.cost(1) >= 0.02

    def test_infeasible_cardinality_rejected(self, cost_curve):
        with pytest.raises(InvalidBinError):
            cost_curve.cost(40)  # answering alone takes 40 minutes

    def test_max_feasible_cardinality(self, cost_curve):
        assert cost_curve.max_feasible_cardinality == 40


class TestDatasetProfile:
    def _dataset(self, profile, cost_curve):
        return DatasetProfile(
            name="unit",
            profiles={0.10: profile},
            confidence_curve=profile,
            cost_curve=cost_curve,
        )

    def test_bin_set_sizes(self, profile, cost_curve):
        dataset = self._dataset(profile, cost_curve)
        bins = dataset.bin_set(12)
        assert bins.cardinalities == list(range(1, 13))

    def test_bin_set_confidence_from_curve(self, profile, cost_curve):
        dataset = self._dataset(profile, cost_curve)
        bins = dataset.bin_set(5)
        assert bins[3].confidence == pytest.approx(profile.confidence(3))

    def test_bin_set_cost_from_market_curve(self, profile, cost_curve):
        dataset = self._dataset(profile, cost_curve)
        bins = dataset.bin_set(5)
        assert bins[5].cost == pytest.approx(cost_curve.cost(5))

    def test_fallback_without_cost_curve_uses_price_levels(self, profile):
        dataset = DatasetProfile(name="unit", profiles={0.10: profile})
        bins = dataset.bin_set(4)
        assert all(task_bin.cost == 0.10 for task_bin in bins)

    def test_confidence_series(self, profile):
        dataset = DatasetProfile(name="unit", profiles={0.10: profile})
        series = dataset.confidence_series(0.10, [1, 5, 10])
        assert series[1] > series[5] > series[10]

    def test_unknown_cost_rejected(self, profile):
        dataset = DatasetProfile(name="unit", profiles={0.10: profile})
        with pytest.raises(KeyError):
            dataset.profile_for_cost(0.5)

    def test_invalid_max_cardinality_rejected(self, profile, cost_curve):
        dataset = self._dataset(profile, cost_curve)
        with pytest.raises(InvalidBinError):
            dataset.bin_set(0)
