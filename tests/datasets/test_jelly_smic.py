"""Tests for the Jelly and SMIC dataset presets."""

import pytest

from repro.core.errors import InvalidBinError
from repro.datasets.jelly import jelly_bin_set, jelly_profile
from repro.datasets.smic import smic_bin_set, smic_profile


class TestJellyProfile:
    def test_paper_anchor_points(self):
        # Figure 3a: confidence about 0.981 at cardinality 2 and about 0.783
        # at cardinality 30 (we allow a small tolerance around the anchors).
        profile = jelly_profile(difficulty=2)
        curve = profile.confidence_curve
        assert curve.confidence(2) == pytest.approx(0.981, abs=0.015)
        assert curve.confidence(30) == pytest.approx(0.783, abs=0.02)

    def test_in_time_limits_ordered_by_price(self):
        profile = jelly_profile()
        limits = [
            profile.profiles[cost].max_in_time_cardinality
            for cost in sorted(profile.profiles)
        ]
        assert limits == sorted(limits)
        assert limits[0] == 14 and limits[-1] == 30

    def test_difficulty_monotone_in_confidence(self):
        easy = jelly_profile(1).confidence_curve.confidence(15)
        default = jelly_profile(2).confidence_curve.confidence(15)
        hard = jelly_profile(3).confidence_curve.confidence(15)
        assert easy > default > hard

    def test_invalid_difficulty_rejected(self):
        with pytest.raises(InvalidBinError):
            jelly_profile(difficulty=5)


class TestJellyBinSet:
    def test_default_menu_has_twenty_bins(self):
        bins = jelly_bin_set()
        assert len(bins) == 20
        assert bins.max_cardinality == 20

    def test_confidence_decreases_with_cardinality(self):
        bins = jelly_bin_set(20)
        confidences = [b.confidence for b in bins]
        assert all(a >= b for a, b in zip(confidences, confidences[1:]))

    def test_per_bin_cost_non_decreasing(self):
        bins = jelly_bin_set(20)
        costs = [b.cost for b in bins]
        assert all(a <= b for a, b in zip(costs, costs[1:]))

    def test_largest_bin_has_lowest_per_task_cost(self):
        bins = jelly_bin_set(20)
        per_task = [b.cost_per_task for b in bins]
        assert min(per_task) == per_task[-1]

    def test_difficulty_parameter_changes_confidence(self):
        default = jelly_bin_set(10, difficulty=2)[10].confidence
        hard = jelly_bin_set(10, difficulty=3)[10].confidence
        assert hard < default


class TestSmicDataset:
    def test_smic_is_harder_than_jelly(self):
        jelly = jelly_bin_set(20)
        smic = smic_bin_set(20)
        for cardinality in (1, 10, 20):
            assert smic[cardinality].confidence < jelly[cardinality].confidence

    def test_smic_anchor_points(self):
        curve = smic_profile().confidence_curve
        assert curve.confidence(2) == pytest.approx(0.85, abs=0.02)
        assert 0.55 <= curve.confidence(30) <= 0.65

    def test_smic_menu_shape(self):
        bins = smic_bin_set(20)
        assert len(bins) == 20
        confidences = [b.confidence for b in bins]
        assert all(a >= b for a, b in zip(confidences, confidences[1:]))

    def test_smic_response_time(self):
        assert smic_profile().response_time_minutes == 30.0
