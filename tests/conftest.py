"""Shared fixtures for the SLADE reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.bins import TaskBinSet
from repro.core.problem import SladeProblem

#: The paper's Table 1 bin set, reused across many tests.
TABLE1_TRIPLES = [(1, 0.9, 0.10), (2, 0.85, 0.18), (3, 0.8, 0.24)]


@pytest.fixture
def table1_bins() -> TaskBinSet:
    """The three-bin menu from Table 1 of the paper."""
    return TaskBinSet.from_triples(TABLE1_TRIPLES, name="table1")


@pytest.fixture
def example4_problem(table1_bins: TaskBinSet) -> SladeProblem:
    """The running example (Example 4): four tasks, t=0.95, Table 1 bins."""
    return SladeProblem.homogeneous(4, 0.95, table1_bins, name="example4")


@pytest.fixture
def heterogeneous_example_problem(table1_bins: TaskBinSet) -> SladeProblem:
    """Examples 10-11: thresholds 0.5/0.6/0.7/0.86 over the Table 1 bins."""
    return SladeProblem.heterogeneous(
        [0.5, 0.6, 0.7, 0.86], table1_bins, name="example10"
    )


@pytest.fixture
def small_jelly_problem() -> SladeProblem:
    """A small homogeneous instance on the Jelly menu for quick solver checks."""
    from repro.datasets.jelly import jelly_bin_set

    return SladeProblem.homogeneous(50, 0.9, jelly_bin_set(10), name="jelly-small")
