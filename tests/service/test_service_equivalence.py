"""Equivalence: the service layer must change nothing but the envelope.

For any request, the plan a :class:`SladeService` returns must be
byte-identical (via canonical JSON serialisation, the same yardstick as
``tests/engine/test_engine_equivalence.py``) to calling the registry solver
directly — across the synchronous facade, the async micro-batching frontend,
and the persistent SQLite cache backend, including the warm-restart path.
"""

import asyncio
import json

from repro.algorithms.registry import create_solver
from repro.core.problem import SladeProblem
from repro.datasets.jelly import jelly_bin_set
from repro.datasets.smic import smic_bin_set
from repro.datasets.thresholds import normal_thresholds
from repro.engine import SQLiteBackend
from repro.service import (
    AsyncSladeService,
    ServiceConfig,
    SladeService,
    SolveRequest,
)


def plan_bytes(plan) -> bytes:
    from repro.io.serialization import plan_to_dict

    return json.dumps(plan_to_dict(plan), sort_keys=True).encode("utf-8")


def request_mix():
    """Homogeneous and heterogeneous requests with guaranteed cache reuse."""
    jelly = jelly_bin_set(12)
    smic = smic_bin_set(8)
    problems = [
        ("opq", SladeProblem.homogeneous(30, 0.9, jelly, name="j-30")),
        ("opq", SladeProblem.homogeneous(47, 0.9, jelly, name="j-47")),
        ("opq", SladeProblem.homogeneous(64, 0.95, jelly, name="j-64")),
        ("opq", SladeProblem.homogeneous(30, 0.9, jelly, name="j-30-again")),
        ("opq", SladeProblem.homogeneous(25, 0.9, smic, name="s-25")),
        ("greedy", SladeProblem.homogeneous(25, 0.9, smic, name="s-25-greedy")),
        (
            "opq-extended",
            SladeProblem.heterogeneous(
                normal_thresholds(40, mu=0.9, sigma=0.03, seed=0), jelly, name="h-0"
            ),
        ),
        (
            "opq-extended",
            SladeProblem.heterogeneous(
                normal_thresholds(40, mu=0.9, sigma=0.03, seed=1), jelly, name="h-1"
            ),
        ),
    ]
    return [
        SolveRequest(problem=problem, solver=solver, request_id=f"req-{i}")
        for i, (solver, problem) in enumerate(problems)
    ]


def cold_bytes(requests):
    return [
        plan_bytes(create_solver(r.solver).solve(r.problem).plan) for r in requests
    ]


class TestSyncEquivalence:
    def test_facade_plans_match_direct_solver_calls(self):
        requests = request_mix()
        service = SladeService()
        responses = [service.solve(request) for request in requests]
        assert all(r.ok for r in responses)
        assert service.cache_stats.hits > 0  # the reuse path is exercised
        assert [plan_bytes(r.plan) for r in responses] == cold_bytes(requests)

    def test_batch_path_matches_direct_solver_calls(self):
        requests = request_mix()
        responses = SladeService().solve_batch(requests)
        assert [plan_bytes(r.plan) for r in responses] == cold_bytes(requests)


class TestAsyncEquivalence:
    def test_micro_batched_plans_match_direct_solver_calls(self):
        requests = request_mix()

        async def scenario():
            async with AsyncSladeService(
                config=ServiceConfig(max_batch_size=4, max_wait_seconds=0.05)
            ) as svc:
                return await svc.submit_many(requests)

        responses = asyncio.run(scenario())
        assert all(r.ok for r in responses)
        assert [r.request_id for r in responses] == [r.request_id for r in requests]
        assert [plan_bytes(r.plan) for r in responses] == cold_bytes(requests)


class TestPersistentBackendEquivalence:
    def test_sqlite_backed_plans_match_direct_solver_calls(self, tmp_path):
        requests = request_mix()
        with SladeService(
            backend=SQLiteBackend(tmp_path / "plans.db")
        ) as service:
            responses = [service.solve(request) for request in requests]
        assert [plan_bytes(r.plan) for r in responses] == cold_bytes(requests)

    def test_warm_restart_plans_match_direct_solver_calls(self, tmp_path):
        requests = request_mix()
        path = tmp_path / "plans.db"
        with SladeService(backend=SQLiteBackend(path)) as first:
            for request in requests:
                assert first.solve(request).ok

        # A "restarted" service on the same file serves hits immediately and
        # its unpickled queues must produce the same bytes.
        with SladeService(backend=SQLiteBackend(path)) as second:
            responses = [second.solve(request) for request in requests]
            stats = second.cache_stats
        assert stats.misses == 0
        assert stats.hits > 0
        assert [plan_bytes(r.plan) for r in responses] == cold_bytes(requests)


class TestClampingChangesAreExplicit:
    """Clamping is the one normalisation that may alter plans — by design."""

    def test_unclamped_service_never_alters_fingerprint(self, example4_problem):
        response = SladeService().solve(SolveRequest(problem=example4_problem))
        assert response.problem_fingerprint == example4_problem.fingerprint

    def test_capped_request_solves_the_capped_instance(self, table1_bins):
        service = SladeService(ServiceConfig(threshold_cap=0.9))
        hot = SladeProblem.homogeneous(6, 0.95, table1_bins)
        capped = SladeProblem.homogeneous(6, 0.9, table1_bins)
        response = service.solve(SolveRequest(problem=hot))
        assert plan_bytes(response.plan) == plan_bytes(
            create_solver("opq").solve(capped).plan
        )
