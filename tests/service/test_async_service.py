"""Tests for the async micro-batching frontend.

Covers the coalescing loop's edge cases from the PR checklist: a single
request flushed by timeout, a burst larger than the batch bound split across
flushes, failures isolated to their own response, and clean shutdown with
pending requests.
"""

import asyncio

import pytest

from repro.core.problem import SladeProblem
from repro.service import (
    AsyncSladeService,
    ServiceClosedError,
    ServiceConfig,
    SladeService,
    SolveRequest,
)


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def request_for(example4_problem):
    def make(**kwargs):
        return SolveRequest(problem=example4_problem, **kwargs)

    return make


class TestMicroBatching:
    def test_single_request_flushed_by_timeout(self, request_for):
        async def scenario():
            async with AsyncSladeService(
                config=ServiceConfig(max_batch_size=8, max_wait_seconds=0.02)
            ) as svc:
                return await svc.submit(request_for(request_id="lonely"))

        response = run(scenario())
        # The batch never filled; the timeout must flush it as a singleton.
        assert response.ok
        assert response.request_id == "lonely"
        assert response.batch_size == 1

    def test_concurrent_submissions_coalesce(self, request_for):
        async def scenario():
            async with AsyncSladeService(
                config=ServiceConfig(max_batch_size=8, max_wait_seconds=0.05)
            ) as svc:
                return await svc.submit_many([request_for() for _ in range(6)])

        responses = run(scenario())
        assert all(r.ok for r in responses)
        # All six were submitted before the first flush deadline, so at
        # least one flush must have carried multiple requests.
        assert max(r.batch_size for r in responses) > 1

    def test_burst_larger_than_max_batch_splits_across_flushes(self, request_for):
        async def scenario():
            async with AsyncSladeService(
                config=ServiceConfig(max_batch_size=2, max_wait_seconds=0.05)
            ) as svc:
                return await svc.submit_many(
                    [request_for(request_id=f"r{i}") for i in range(5)]
                )

        responses = run(scenario())
        assert [r.request_id for r in responses] == [f"r{i}" for i in range(5)]
        assert all(r.ok for r in responses)
        assert all(r.batch_size <= 2 for r in responses)
        # Five requests under a bound of two partition into at least three
        # flushes, one of which is necessarily a singleton.
        assert any(r.batch_size == 1 for r in responses)

    def test_failure_isolated_to_its_own_response(self, request_for):
        async def scenario():
            async with AsyncSladeService(
                config=ServiceConfig(max_batch_size=8, max_wait_seconds=0.05)
            ) as svc:
                return await svc.submit_many(
                    [
                        request_for(request_id="good-1"),
                        request_for(request_id="bad", solver="magic"),
                        request_for(request_id="good-2"),
                    ]
                )

        responses = run(scenario())
        by_id = {r.request_id: r for r in responses}
        assert by_id["good-1"].ok
        assert by_id["good-2"].ok
        assert not by_id["bad"].ok
        assert by_id["bad"].error.type == "RequestValidationError"


class TestLifecycle:
    def test_clean_shutdown_resolves_pending_requests(self, request_for):
        async def scenario():
            svc = AsyncSladeService(
                config=ServiceConfig(max_batch_size=4, max_wait_seconds=0.05)
            )
            await svc.start()
            pending = [
                asyncio.ensure_future(svc.submit(request_for(request_id=f"p{i}")))
                for i in range(5)
            ]
            # Let the submissions enqueue, then close while they are pending.
            await asyncio.sleep(0)
            await svc.close()
            return await asyncio.gather(*pending)

        responses = run(scenario())
        assert len(responses) == 5
        assert all(r.ok for r in responses)

    def test_submit_after_close_rejected(self, request_for):
        async def scenario():
            svc = AsyncSladeService(config=ServiceConfig())
            await svc.start()
            await svc.close()
            with pytest.raises(ServiceClosedError):
                await svc.submit(request_for())

        run(scenario())

    def test_close_without_start_is_clean(self):
        async def scenario():
            svc = AsyncSladeService(config=ServiceConfig())
            await svc.close()

        run(scenario())

    def test_close_is_idempotent(self, request_for):
        async def scenario():
            svc = AsyncSladeService(config=ServiceConfig())
            assert (await svc.submit(request_for())).ok
            await svc.close()
            await svc.close()

        run(scenario())

    def test_service_and_config_mutually_exclusive(self):
        with pytest.raises(ValueError):
            AsyncSladeService(service=SladeService(), config=ServiceConfig())

    def test_batching_overrides(self):
        svc = AsyncSladeService(
            config=ServiceConfig(max_batch_size=16),
            max_batch_size=4,
            max_wait_seconds=0.0,
        )
        assert svc.max_batch_size == 4
        assert svc.max_wait_seconds == 0.0

    def test_zero_wait_still_serves(self, request_for):
        async def scenario():
            async with AsyncSladeService(
                config=ServiceConfig(max_batch_size=4, max_wait_seconds=0.0)
            ) as svc:
                return await svc.submit_many([request_for() for _ in range(3)])

        responses = run(scenario())
        assert all(r.ok for r in responses)


class TestSharedCacheAcrossFrontends:
    def test_async_requests_hit_cache_warmed_by_sync_facade(
        self, request_for, example4_problem
    ):
        facade = SladeService()
        facade.solve(SolveRequest(problem=example4_problem))

        async def scenario():
            async with AsyncSladeService(service=facade) as svc:
                return await svc.submit(request_for())

        response = run(scenario())
        assert response.ok
        assert response.cache == "hit"

    def test_heterogeneous_requests_through_async_path(self, table1_bins):
        problem = SladeProblem.heterogeneous(
            [0.5, 0.6, 0.7, 0.86], table1_bins, name="hetero"
        )

        async def scenario():
            async with AsyncSladeService(config=ServiceConfig()) as svc:
                return await svc.submit(
                    SolveRequest(problem=problem, solver="opq-extended")
                )

        response = run(scenario())
        assert response.ok
        assert response.solver == "opq-extended"
