"""Deadline semantics through the facade, the normalisation door, the wire
format, and the unified HTTP clients."""

import time
from dataclasses import replace

import pytest

from repro.io.serialization import (
    SerializationError,
    solve_request_from_dict,
    solve_request_to_dict,
    solve_response_from_dict,
    solve_response_to_dict,
)
from repro.service import (
    DeadlineExceededError,
    Provenance,
    RequestValidationError,
    ServiceConfig,
    SladeService,
    SolveRequest,
    check_not_expired,
    remaining_budget_seconds,
    stamp_deadline,
)
from repro.service.client import (
    _build_headers,
    _check_api_version,
    _payload_dict,
    _solve_path,
)


@pytest.fixture
def service():
    return SladeService()


@pytest.fixture
def request_for(example4_problem):
    def make(**kwargs):
        return SolveRequest(problem=example4_problem, **kwargs)

    return make


class TestNormalize:
    def test_stamp_converts_relative_to_absolute(self, request_for):
        before = time.monotonic()
        stamped = stamp_deadline(request_for(deadline_ms=250.0))
        assert before + 0.2 < stamped.deadline_at < time.monotonic() + 0.3

    def test_stamp_is_idempotent(self, request_for):
        stamped = stamp_deadline(request_for(deadline_ms=250.0))
        assert stamp_deadline(stamped) is stamped

    def test_unbudgeted_request_untouched(self, request_for):
        request = request_for()
        assert stamp_deadline(request) is request
        assert remaining_budget_seconds(request) is None

    def test_check_not_expired_raises_past_deadline(self, request_for):
        expired = replace(
            request_for(deadline_ms=5.0), deadline_at=time.monotonic() - 1.0
        )
        with pytest.raises(DeadlineExceededError, match="expired"):
            check_not_expired(expired, where="submit")

    def test_check_not_expired_passes_with_budget(self, request_for):
        check_not_expired(stamp_deadline(request_for(deadline_ms=60_000.0)))

    def test_negative_deadline_rejected(self, request_for):
        with pytest.raises(RequestValidationError):
            request_for(deadline_ms=-5.0)

    def test_non_numeric_deadline_rejected(self, request_for):
        with pytest.raises(RequestValidationError):
            request_for(deadline_ms="soon")


class TestFacadeDeadlines:
    def test_every_response_carries_provenance(self, service, request_for):
        plain = service.solve(request_for())
        assert plain.provenance is not None
        assert plain.provenance.quality == "optimal"
        assert plain.provenance.tier == "build"
        warm = service.solve(request_for())
        assert warm.provenance.tier == "cache"

    def test_expired_before_dispatch_does_no_planner_work(
        self, service, request_for
    ):
        expired = replace(
            request_for(deadline_ms=5.0), deadline_at=time.monotonic() - 1.0
        )
        planned_before = service.telemetry.counter("planner.instances")
        response = service.solve(expired)
        assert not response.ok
        assert response.error.type == "DeadlineExceededError"
        assert service.telemetry.counter("planner.instances") == planned_before
        assert service.telemetry.counter("deadline.expired") == 1.0
        assert service.telemetry.counter("deadline.requests") == 1.0

    def test_deadline_routes_to_anytime_solver(self, service, request_for):
        response = service.solve(request_for(deadline_ms=60_000.0))
        assert response.ok
        assert response.solver == "anytime"
        assert response.provenance.quality == "optimal"
        assert response.provenance.deadline_ms == 60_000.0
        assert 0 < response.provenance.remaining_budget_ms <= 60_000.0
        assert service.telemetry.counter("deadline.hits") == 1.0

    def test_exhausted_budget_returns_feasible_best_so_far(
        self, service, request_for
    ):
        # A zero solver budget forces the greedy floor deterministically —
        # the served plan must still be feasible, marked degraded, and the
        # best-so-far counter must see it.
        response = service.solve(
            request_for(
                deadline_ms=60_000.0,
                solver="anytime",
                options={"budget_seconds": 0.0},
            )
        )
        assert response.ok
        assert response.feasible is True
        assert response.provenance.quality == "greedy"
        assert service.telemetry.counter("deadline.best_so_far") == 1.0

    def test_explicit_solver_still_honoured(self, service, request_for):
        response = service.solve(request_for(deadline_ms=60_000.0, solver="opq"))
        assert response.ok
        assert response.solver == "opq"
        assert response.provenance.quality == "optimal"


class TestWireFormat:
    def test_deadline_round_trips(self, request_for):
        payload = solve_request_to_dict(request_for(deadline_ms=125.0))
        assert payload["schema_version"] == 2
        assert payload["deadline_ms"] == 125.0
        parsed = solve_request_from_dict(payload)
        assert parsed.deadline_ms == 125.0
        assert parsed.deadline_at is None    # monotonic instants never travel

    def test_unbudgeted_request_omits_field(self, request_for):
        assert "deadline_ms" not in solve_request_to_dict(request_for())

    def test_unknown_request_field_rejected(self, request_for):
        payload = solve_request_to_dict(request_for())
        payload["dead_line_ms"] = 50
        with pytest.raises(RequestValidationError, match="dead_line_ms"):
            solve_request_from_dict(payload)

    def test_version_1_request_accepted(self, request_for):
        payload = solve_request_to_dict(request_for())
        payload["version"] = 1
        del payload["schema_version"]
        assert solve_request_from_dict(payload).request_id is None

    def test_unsupported_version_rejected(self, request_for):
        payload = solve_request_to_dict(request_for())
        payload["schema_version"] = 3
        with pytest.raises(SerializationError, match="schema version"):
            solve_request_from_dict(payload)

    def test_provenance_round_trips(self, service, request_for):
        response = service.solve(request_for(deadline_ms=60_000.0))
        payload = solve_response_to_dict(response)
        assert payload["schema_version"] == 2
        decoded = solve_response_from_dict(payload)
        assert decoded.provenance == response.provenance

    def test_response_reader_is_tolerant(self, service, request_for):
        payload = solve_response_to_dict(service.solve(request_for()))
        payload["a_future_field"] = {"anything": True}
        decoded = solve_response_from_dict(payload)
        assert decoded.ok
        payload.pop("provenance")
        assert solve_response_from_dict(payload).provenance is None


class TestClientHelpers:
    def test_payload_injects_deadline(self):
        payload = _payload_dict({"kind": "solve_request"}, deadline_ms=75.0)
        assert payload["deadline_ms"] == 75.0

    def test_payload_keeps_explicit_deadline(self):
        payload = _payload_dict(
            {"kind": "solve_request", "deadline_ms": 10.0}, deadline_ms=75.0
        )
        assert payload["deadline_ms"] == 10.0

    def test_solve_paths(self):
        assert _solve_path("v2", False, None) == "/v2/solve"
        assert _solve_path("v2", True, True) == "/v2/solve/batch?plan=1"
        assert _solve_path("v1", False, False) == "/v1/solve?plan=0"

    def test_headers_carry_tenant_and_token(self):
        headers = _build_headers("team-a", "sekrit")
        assert headers["X-Tenant"] == "team-a"
        assert headers["Authorization"] == "Bearer sekrit"
        assert "X-Tenant" not in _build_headers(None, None)

    def test_api_version_checked(self):
        assert _check_api_version("v1") == "v1"
        with pytest.raises(ValueError):
            _check_api_version("v3")


class TestProvenanceShape:
    def test_provenance_is_frozen_value(self):
        provenance = Provenance(quality="greedy", tier="greedy")
        with pytest.raises(AttributeError):
            provenance.quality = "optimal"

    def test_service_config_anytime_roundtrip(self, example4_problem):
        # A config defaulting to the anytime solver serves unbudgeted
        # requests at optimal quality (no deadline, nothing truncates).
        service = SladeService(ServiceConfig(solver="anytime"))
        response = service.solve(SolveRequest(problem=example4_problem))
        assert response.ok
        assert response.provenance.quality == "optimal"
