"""Tests for the synchronous service facade: validation, normalisation,
error envelopes, cache provenance, and configuration."""

import pytest

from repro.algorithms.registry import create_solver
from repro.core.problem import SladeProblem
from repro.engine import BatchPlanner, PlanCache, SQLiteBackend
from repro.service import (
    CACHE_BYPASS,
    CACHE_HIT,
    CACHE_MISS,
    CACHE_NONE,
    RequestValidationError,
    ServiceConfig,
    ServiceError,
    SladeService,
    SolveRequest,
)


@pytest.fixture
def service():
    return SladeService()


@pytest.fixture
def request_for(example4_problem):
    def make(**kwargs):
        return SolveRequest(problem=example4_problem, **kwargs)

    return make


class TestSolveHappyPath:
    def test_successful_response_shape(self, service, request_for, example4_problem):
        response = service.solve(request_for())
        assert response.ok
        assert response.solver == "opq"
        assert response.total_cost == pytest.approx(0.68)
        assert response.feasible is True
        assert response.cache == CACHE_MISS
        assert response.elapsed_seconds > 0.0
        assert response.solve_seconds > 0.0
        assert response.batch_size == 1
        assert response.problem_fingerprint == example4_problem.fingerprint
        assert response.error is None
        assert response.raise_for_error() is response

    def test_repeat_request_is_cache_hit(self, service, request_for):
        service.solve(request_for())
        response = service.solve(request_for())
        assert response.cache == CACHE_HIT

    def test_uncached_solver_reports_bypass(self, service, request_for):
        response = service.solve(request_for(solver="greedy"))
        assert response.ok
        assert response.cache == CACHE_BYPASS

    def test_request_ids_assigned_sequentially(self, service, request_for):
        first = service.solve(request_for())
        second = service.solve(request_for())
        assert (first.request_id, second.request_id) == ("req-1", "req-2")

    def test_caller_request_id_echoed(self, service, request_for):
        response = service.solve(request_for(request_id="my-id"))
        assert response.request_id == "my-id"

    def test_options_forwarded_to_solver(self, service, example4_problem):
        response = service.solve(
            SolveRequest(
                problem=example4_problem,
                solver="baseline",
                options={"chunk_size": 2, "seed": 0},
            )
        )
        assert response.ok
        assert response.solver == "baseline"


class TestErrorEnvelopes:
    def test_unknown_solver_enveloped(self, service, request_for):
        response = service.solve(request_for(solver="magic"))
        assert not response.ok
        assert response.cache == CACHE_NONE
        assert response.error.type == "RequestValidationError"
        assert "magic" in response.error.message
        with pytest.raises(ServiceError):
            response.raise_for_error()

    def test_queue_injection_options_rejected(self, service, request_for):
        response = service.solve(request_for(options={"queue_factory": None}))
        assert not response.ok
        assert response.error.type == "RequestValidationError"

    def test_bad_solver_option_enveloped(self, service, request_for):
        response = service.solve(request_for(options={"no_such_kwarg": 1}))
        assert not response.ok
        assert response.error.type == "TypeError"

    def test_non_problem_request_rejected_at_construction(self):
        with pytest.raises(RequestValidationError):
            SolveRequest(problem="not a problem")

    def test_failure_is_isolated_in_batch(self, service, request_for):
        responses = service.solve_batch(
            [request_for(), request_for(solver="magic"), request_for()]
        )
        assert [r.ok for r in responses] == [True, False, True]
        assert all(r.batch_size == 3 for r in responses)


class TestNormalisation:
    def test_default_solver_from_config(self, example4_problem):
        service = SladeService(ServiceConfig(solver="greedy"))
        response = service.solve(SolveRequest(problem=example4_problem))
        assert response.solver == "greedy"

    def test_threshold_cap_clamps_problem(self, table1_bins):
        service = SladeService(ServiceConfig(threshold_cap=0.95))
        hot = SladeProblem.homogeneous(4, 0.97, table1_bins, name="hot")
        capped = SladeProblem.homogeneous(4, 0.95, table1_bins, name="capped")
        response = service.solve(SolveRequest(problem=hot))
        assert response.ok
        assert response.problem_fingerprint == capped.fingerprint
        assert response.total_cost == pytest.approx(
            create_solver("opq").solve(capped).total_cost
        )

    def test_threshold_floor_clamps_problem(self, table1_bins):
        service = SladeService(ServiceConfig(threshold_floor=0.9))
        weak = SladeProblem.heterogeneous([0.5, 0.95], table1_bins, name="weak")
        response = service.solve(SolveRequest(problem=weak))
        floored = SladeProblem.heterogeneous([0.9, 0.95], table1_bins)
        assert response.problem_fingerprint == floored.fingerprint

    def test_no_clamp_preserves_problem(self, service, request_for, example4_problem):
        response = service.solve(request_for())
        assert response.problem_fingerprint == example4_problem.fingerprint

    def test_verify_override_per_request(self, service, request_for):
        response = service.solve(request_for(verify=False))
        assert response.ok

    def test_invalid_config_rejected(self):
        with pytest.raises(ServiceError):
            ServiceConfig(max_batch_size=0)
        with pytest.raises(ServiceError):
            ServiceConfig(max_wait_seconds=-1.0)
        with pytest.raises(ServiceError):
            ServiceConfig(threshold_cap=1.5)
        with pytest.raises(ServiceError):
            ServiceConfig(threshold_floor=0.9, threshold_cap=0.5)
        with pytest.raises(ServiceError):
            ServiceConfig(opq_core="cuda")

    def test_opq_core_reaches_the_plan_cache(self, request_for):
        service = SladeService(ServiceConfig(opq_core="python"))
        assert service.cache._opq_core == "python"
        assert service.solve(request_for()).ok


class TestWiring:
    def test_shared_planner_shares_cache(self, example4_problem):
        planner = BatchPlanner(cache=PlanCache())
        planner.solve(example4_problem, solver="opq")   # prime via the planner
        service = SladeService(planner=planner)
        response = service.solve(SolveRequest(problem=example4_problem))
        assert response.cache == CACHE_HIT

    def test_planner_and_backend_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError):
            SladeService(
                planner=BatchPlanner(),
                backend=SQLiteBackend(tmp_path / "plans.db"),
            )

    def test_config_backend_spec_resolved(self, tmp_path, request_for):
        path = tmp_path / "plans.db"
        with SladeService(ServiceConfig(cache_backend=f"sqlite:{path}")) as service:
            assert service.cache.persistent
            assert service.solve(request_for()).ok
        assert path.exists()

    def test_cache_stats_exposed(self, service, request_for):
        service.solve(request_for())
        service.solve(request_for())
        stats = service.cache_stats
        assert (stats.hits, stats.misses) == (1, 1)


class TestDriftAwareNormalisation:
    def test_requests_transparently_use_the_active_epoch(self, table1_bins):
        service = SladeService()
        problem = SladeProblem.homogeneous(4, 0.95, table1_bins)
        first = service.solve(SolveRequest(problem=problem))
        assert first.ok
        # Decay cardinality 1 far below its calibrated 0.9 and sweep.
        for index in range(40):
            service.drift.observe(table1_bins, 1, index % 2 == 0)
        report = service.drift.revalidate_drifted()
        assert report.recalibrated_menus == 1
        # The client re-sends the menu it has always known; the facade
        # resolves it to the recalibrated epoch behind its back.
        after = service.solve(SolveRequest(problem=problem))
        assert after.ok
        active, recalibrations = service.drift.lineage(table1_bins)
        assert recalibrations == 1
        assert after.problem_fingerprint != first.problem_fingerprint
        # Plans priced at the observed 0.5 accuracy for the workhorse
        # single-task bin cost more than plans priced at the stale menu.
        assert after.total_cost > first.total_cost

    def test_drift_config_validation(self):
        with pytest.raises(ServiceError):
            ServiceConfig(drift_window=0)
        with pytest.raises(ServiceError):
            ServiceConfig(drift_min_observations=0)
        with pytest.raises(ServiceError):
            ServiceConfig(drift_window=10, drift_min_observations=11)
        with pytest.raises(ServiceError):
            ServiceConfig(drift_tolerance=0.0)
        with pytest.raises(ServiceError):
            ServiceConfig(drift_tolerance_above=1.0)
        with pytest.raises(ServiceError):
            ServiceConfig(drift_check_seconds=-1.0)

    def test_drift_settings_reach_the_controller(self):
        config = ServiceConfig(
            drift_window=60,
            drift_min_observations=12,
            drift_tolerance=0.08,
            drift_tolerance_above=0.2,
        )
        service = SladeService(config=config)
        assert service.drift.window == 60
        assert service.drift.min_observations == 12
        assert service.drift.tolerance == pytest.approx(0.08)
        assert service.drift.tolerance_above == pytest.approx(0.2)
