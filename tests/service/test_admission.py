"""Admission control: token buckets, in-flight quotas, tenant isolation."""

import pytest

from repro.engine.telemetry import Telemetry
from repro.service.api import (
    OverloadedError,
    RateLimitedError,
    RequestValidationError,
    ServiceError,
)
from repro.service.transport.admission import (
    DEFAULT_TENANT,
    AdmissionController,
    TokenBucket,
)


class FakeClock:
    """A hand-cranked monotonic clock for deterministic refill."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_starts_full_and_spends_down(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3, clock=clock)
        assert bucket.try_acquire() is None
        assert bucket.try_acquire() is None
        assert bucket.try_acquire() is None
        retry = bucket.try_acquire()
        assert retry == pytest.approx(1.0)

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2, clock=clock)
        bucket.try_acquire(2.0)
        assert bucket.try_acquire() is not None
        clock.advance(0.5)  # 1 token back
        assert bucket.try_acquire() is None
        assert bucket.try_acquire() is not None

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
        clock.advance(100.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_retry_after_scales_with_cost(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4, clock=clock)
        bucket.try_acquire(4.0)
        assert bucket.try_acquire(3.0) == pytest.approx(1.5)

    def test_invalid_parameters(self):
        with pytest.raises(ServiceError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ServiceError):
            TokenBucket(rate=1.0, burst=0)


class TestAdmissionController:
    def test_unlimited_controller_admits_everything(self):
        controller = AdmissionController()
        assert not controller.limits_anything
        for _ in range(100):
            controller.admit("anyone").release()

    def test_rate_limit_rejects_with_retry_after(self):
        clock = FakeClock()
        controller = AdmissionController(rate=1.0, burst=2, clock=clock)
        controller.admit("a").release()
        controller.admit("a").release()
        with pytest.raises(RateLimitedError) as excinfo:
            controller.admit("a")
        assert excinfo.value.retry_after == pytest.approx(1.0)

    def test_tenant_buckets_are_isolated(self):
        clock = FakeClock()
        controller = AdmissionController(rate=1.0, burst=1, clock=clock)
        controller.admit("a").release()
        with pytest.raises(RateLimitedError):
            controller.admit("a")
        # Tenant b has an untouched bucket despite a's exhaustion.
        controller.admit("b").release()

    def test_bucket_refill_readmits(self):
        clock = FakeClock()
        controller = AdmissionController(rate=2.0, burst=1, clock=clock)
        controller.admit("a").release()
        with pytest.raises(RateLimitedError):
            controller.admit("a")
        clock.advance(0.5)
        controller.admit("a").release()

    def test_per_tenant_inflight_quota(self):
        controller = AdmissionController(max_inflight=2)
        first = controller.admit("a")
        second = controller.admit("a")
        with pytest.raises(RateLimitedError):
            controller.admit("a")
        # Other tenants are unaffected by a's saturation.
        controller.admit("b").release()
        first.release()
        third = controller.admit("a")
        second.release()
        third.release()
        assert controller.tenant_inflight("a") == 0

    def test_global_inflight_quota_is_overload(self):
        controller = AdmissionController(max_total_inflight=1)
        ticket = controller.admit("a")
        with pytest.raises(OverloadedError):
            controller.admit("b")
        ticket.release()
        controller.admit("b").release()

    def test_ticket_is_context_manager_and_idempotent(self):
        controller = AdmissionController(max_inflight=1)
        with controller.admit("a") as ticket:
            assert controller.tenant_inflight("a") == 1
        assert controller.tenant_inflight("a") == 0
        ticket.release()  # double release must not underflow
        assert controller.total_inflight == 0

    def test_batch_cost_charges_bucket_and_inflight(self):
        clock = FakeClock()
        controller = AdmissionController(rate=1.0, burst=5, clock=clock)
        with controller.admit("a", cost=3):
            assert controller.total_inflight == 3
        with pytest.raises(RateLimitedError):
            controller.admit("a", cost=3)

    def test_refund_returns_tokens_release_does_not(self):
        clock = FakeClock()
        controller = AdmissionController(rate=0.001, burst=2, clock=clock)
        controller.admit("a").refund()
        controller.admit("a").release()
        controller.admit("a").refund()
        # Spent 3, refunded 2: exactly one token remains despite ~no refill.
        controller.admit("a").release()
        with pytest.raises(RateLimitedError):
            controller.admit("a")

    def test_refund_is_idempotent_after_release(self):
        controller = AdmissionController(max_inflight=1)
        ticket = controller.admit("a")
        ticket.release()
        ticket.refund()  # no double release of the in-flight slot
        assert controller.total_inflight == 0

    def test_cost_beyond_any_capacity_is_non_retryable(self):
        """A cost no amount of waiting can serve must not 429 forever."""
        clock = FakeClock()
        for controller in (
            AdmissionController(rate=1.0, burst=4, clock=clock),
            AdmissionController(max_inflight=4),
            AdmissionController(max_total_inflight=4),
        ):
            with pytest.raises(RequestValidationError):
                controller.admit("a", cost=5)
            # Nothing was charged by the rejected oversize request.
            controller.admit("a", cost=4).release()

    def test_default_tenant_for_anonymous_requests(self):
        controller = AdmissionController(max_inflight=1)
        ticket = controller.admit(None)
        assert ticket.tenant == DEFAULT_TENANT
        with pytest.raises(RateLimitedError):
            controller.admit("")
        ticket.release()

    def test_telemetry_counters(self):
        clock = FakeClock()
        telemetry = Telemetry()
        controller = AdmissionController(
            rate=1.0, burst=1, clock=clock, telemetry=telemetry
        )
        controller.admit("a").release()
        with pytest.raises(RateLimitedError):
            controller.admit("a")
        assert telemetry.counter("admission.admitted") == 1
        assert telemetry.counter("admission.rate_limited") == 1

    def test_invalid_configuration(self):
        with pytest.raises(ServiceError):
            AdmissionController(burst=2)  # burst without rate
        with pytest.raises(ServiceError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ServiceError):
            AdmissionController(max_total_inflight=0)
        with pytest.raises(ServiceError):
            AdmissionController().admit("a", cost=0)


class TestTenantQuotaOverrides:
    """Per-tenant ``tenant_limits`` token-bucket overrides (tiered quotas)."""

    def test_override_replaces_global_bucket(self):
        clock = FakeClock()
        controller = AdmissionController(
            rate=100.0, burst=100, tenant_limits={"free": (1.0, 1.0)},
            clock=clock,
        )
        controller.admit("free").release()
        with pytest.raises(RateLimitedError) as excinfo:
            controller.admit("free")
        # The 429 quotes the *override* parameters, not the global ones.
        assert "1/s" in str(excinfo.value)
        assert excinfo.value.retry_after == pytest.approx(1.0)

    def test_unlisted_tenants_fall_back_to_global(self):
        clock = FakeClock()
        controller = AdmissionController(
            rate=1.0, burst=1, tenant_limits={"paid": (100.0, 100.0)},
            clock=clock,
        )
        for _ in range(50):
            controller.admit("paid").release()
        controller.admit("other").release()
        with pytest.raises(RateLimitedError):
            controller.admit("other")

    def test_overrides_work_without_global_rate(self):
        clock = FakeClock()
        controller = AdmissionController(
            tenant_limits={"free": (1.0, 1.0)}, clock=clock
        )
        assert controller.limits_anything
        # Unlisted tenants are unlimited: no global bucket exists.
        for _ in range(50):
            controller.admit("anyone").release()
        controller.admit("free").release()
        with pytest.raises(RateLimitedError):
            controller.admit("free")

    def test_oversize_cost_checked_against_tenant_burst(self):
        clock = FakeClock()
        controller = AdmissionController(
            rate=10.0, burst=10, tenant_limits={"free": (1.0, 2.0)},
            clock=clock,
        )
        with pytest.raises(RequestValidationError):
            controller.admit("free", cost=3)
        # The same batch is fine for a tenant on the global bucket...
        controller.admit("other", cost=3).release()
        # ...and nothing was charged to the rejected tenant.
        controller.admit("free", cost=2).release()

    def test_invalid_overrides_rejected_eagerly(self):
        with pytest.raises(ServiceError):
            AdmissionController(tenant_limits={"t": (0.0, 1.0)})
        with pytest.raises(ServiceError):
            AdmissionController(tenant_limits={"t": (1.0, 0.5)})


class TestSharedBurstFairness:
    """A soak over simulated time: tiered quotas under one shared burst.

    ``free`` holds a 5 req/s bucket, ``paid`` a 200 req/s bucket.  Both
    offer 20 req/s for 30 simulated seconds.  The free tier must shed most
    of its load as 429s while the paid tier is admitted in full — and the
    free tier's rejections must never leak into the paid tier's books or
    the in-flight accounting.
    """

    def test_over_quota_tenant_sheds_load_without_touching_peer(self):
        clock = FakeClock()
        controller = AdmissionController(
            tenant_limits={"free": (5.0, 5.0), "paid": (200.0, 200.0)},
            clock=clock,
        )
        outcomes = {"free": {"ok": 0, "rejected": 0},
                    "paid": {"ok": 0, "rejected": 0}}
        step = 1.0 / 20.0
        for _ in range(600):  # 30 simulated seconds at 20 req/s per tenant
            for tenant in ("free", "paid"):
                try:
                    controller.admit(tenant).release()
                    outcomes[tenant]["ok"] += 1
                except RateLimitedError:
                    outcomes[tenant]["rejected"] += 1
            clock.advance(step)

        assert outcomes["paid"]["rejected"] == 0
        assert outcomes["paid"]["ok"] == 600
        assert outcomes["free"]["rejected"] > 0
        # The free tier converges on its sustained rate: ~5/s over 30 s,
        # plus the initial burst allowance.
        assert outcomes["free"]["ok"] == pytest.approx(155, abs=10)
        assert controller.total_inflight == 0
        assert controller.tenant_inflight("free") == 0
        assert controller.tenant_inflight("paid") == 0
