"""Tests for the drift-driven calibration loop (:mod:`repro.service.drift`).

Unit coverage for :class:`DriftController`: lineage registration and
request-path resolution, observation intake (direct and via the
``/v2/feedback`` document format), the revalidation sweep's
publish-swap-delete ordering, its fail-open contract, and the ``drift.*``
observability surface.  The live HTTP scenario lives in
``tests/integration/test_drift_loop.py``.
"""

import pytest

from repro.algorithms.opq_vec import build_queue
from repro.core.bins import TaskBinSet
from repro.engine.cache import PlanCache
from repro.engine.fingerprint import opq_key
from repro.engine.telemetry import Telemetry
from repro.io.serialization import bin_set_to_dict
from repro.service.api import RequestValidationError
from repro.service.drift import DriftController

TRIPLES = [(1, 0.9, 0.10), (2, 0.85, 0.18), (3, 0.8, 0.24)]


@pytest.fixture
def bins():
    return TaskBinSet.from_triples(TRIPLES, name="table1")


def controller(cache=None, telemetry=None, **kwargs):
    kwargs.setdefault("min_observations", 10)
    kwargs.setdefault("window", 50)
    if cache is None:  # NB: an empty PlanCache is falsy, so no `or` here
        cache = PlanCache()
    return DriftController(cache=cache, telemetry=telemetry, **kwargs)


def feed(ctrl, bins, cardinality, accuracy, count):
    correct = int(round(accuracy * count))
    for index in range(count):
        ctrl.observe(bins, cardinality, index < correct)


class TestLineage:
    def test_register_returns_active_menu(self, bins):
        ctrl = controller()
        assert ctrl.register(bins, [0.95]) is bins
        # Same content re-registers into the same lineage.
        clone = TaskBinSet.from_triples(TRIPLES, name="other-name")
        assert ctrl.register(clone, [0.9]).fingerprint == bins.fingerprint

    def test_resolve_unknown_menu_is_identity(self, bins):
        assert controller().resolve(bins) is bins

    def test_lineage_reports_recalibration_count(self, bins):
        ctrl = controller()
        ctrl.register(bins)
        assert ctrl.lineage(bins) == (bins, 0)
        assert ctrl.lineage(bins.next_epoch()) is None


class TestObservation:
    def test_observe_registers_on_the_fly(self, bins):
        telemetry = Telemetry()
        ctrl = controller(telemetry=telemetry)
        assert ctrl.observe(bins, 2, True) is True
        assert telemetry.counter("drift.observations") == 1
        assert ctrl.lineage(bins) is not None

    def test_unknown_cardinality_dropped_not_raised(self, bins):
        ctrl = controller()
        assert ctrl.observe(bins, 99, True) is False

    def test_drifted_roots_after_decay(self, bins):
        ctrl = controller()
        ctrl.register(bins, [0.95])
        assert ctrl.drifted_roots() == []
        feed(ctrl, bins, 2, 0.55, 30)  # assumed 0.85
        assert ctrl.drifted_roots() == [bins.fingerprint]


class TestFeedbackDocuments:
    def test_triples_form_records_observations(self, bins):
        ctrl = controller()
        recorded = ctrl.ingest_feedback({
            "bins": TRIPLES,
            "observations": [[2, True], [2, False], [1, True]],
        })
        assert recorded == 3

    def test_bin_set_document_form(self, bins):
        ctrl = controller()
        recorded = ctrl.ingest_feedback({
            "bins": bin_set_to_dict(bins),
            "observations": [[3, False]],
        })
        assert recorded == 1

    def test_unknown_cardinalities_are_skipped_in_count(self, bins):
        ctrl = controller()
        recorded = ctrl.ingest_feedback({
            "bins": TRIPLES,
            "observations": [[2, True], [42, True]],
        })
        assert recorded == 1

    @pytest.mark.parametrize("payload", [
        [],                                            # not an object
        {"observations": [[1, True]]},                 # missing bins
        {"bins": "nope", "observations": []},          # bad bins type
        {"bins": TRIPLES, "observations": {"1": True}},  # bad observations type
        {"bins": TRIPLES, "observations": [[1]]},      # pair too short
        {"bins": TRIPLES, "observations": [[True, True]]},  # bool cardinality
        {"bins": TRIPLES, "observations": [["2", True]]},   # str cardinality
        {"bins": [[1, 2.0, 0.1]], "observations": []},  # invalid confidence
    ])
    def test_malformed_payloads_rejected(self, payload):
        with pytest.raises(RequestValidationError):
            controller().ingest_feedback(payload)

    def test_feedback_requests_counted(self, bins):
        telemetry = Telemetry()
        ctrl = controller(telemetry=telemetry)
        ctrl.ingest_feedback({"bins": TRIPLES, "observations": []})
        assert telemetry.counter("drift.feedback_requests") == 1


class TestRevalidation:
    def test_sweep_swaps_epoch_and_deletes_stale_keys(self, bins):
        telemetry = Telemetry()
        cache = PlanCache(telemetry=telemetry)
        ctrl = controller(cache=cache, telemetry=telemetry)
        thresholds = [0.93, 0.95]
        for threshold in thresholds:
            cache.queue_for(bins, threshold)
        ctrl.register(bins, thresholds)
        feed(ctrl, bins, 2, 0.55, 30)

        report = ctrl.revalidate_drifted()

        assert report.recalibrated_menus == 1
        assert report.revalidated_entries == 2
        assert report.failures == 0
        active, recalibrations = ctrl.lineage(bins)
        assert recalibrations == 1
        assert active.calibration_epoch == 1
        assert active[2].confidence == pytest.approx(0.55, abs=0.02)
        for threshold in thresholds:
            assert opq_key(bins, threshold) not in cache      # stale gone
            assert opq_key(active, threshold) in cache        # new published
        assert telemetry.counter("drift.recalibrations") == 1
        assert telemetry.counter("drift.invalidated_keys") >= 2

    def test_revalidated_plans_meet_threshold_at_observed_accuracy(self, bins):
        cache = PlanCache()
        ctrl = controller(cache=cache)
        cache.queue_for(bins, 0.95)
        ctrl.register(bins, [0.95])
        feed(ctrl, bins, 2, 0.55, 30)
        feed(ctrl, bins, 3, 0.50, 30)
        ctrl.revalidate_drifted()
        active, _ = ctrl.lineage(bins)
        queue = cache.queue_for(active, 0.95)
        # Every frontier element was validated against the *corrected*
        # confidences, so meeting the threshold holds at the observed
        # accuracies — not the stale calibrated ones.
        assert len(queue) > 0
        assert all(c.satisfies(0.95) for c in queue.elements())

    def test_requests_resolve_to_new_epoch_after_sweep(self, bins):
        cache = PlanCache()
        ctrl = controller(cache=cache)
        ctrl.register(bins, [0.95])
        feed(ctrl, bins, 2, 0.55, 30)
        ctrl.revalidate_drifted()
        active = ctrl.resolve(bins)
        assert active.calibration_epoch == 1
        # Feedback keyed by the stale menu keeps landing in the lineage.
        assert ctrl.observe(bins, 2, True) is True

    def test_sweep_without_drift_is_a_no_op(self, bins):
        ctrl = controller()
        ctrl.register(bins, [0.95])
        report = ctrl.revalidate_drifted()
        assert not report.acted

    def test_sweep_failure_is_contained_and_retried(self, bins):
        telemetry = Telemetry()

        class BrokenSeedCache(PlanCache):
            broken = True

            def seed_for(self, bins, threshold):
                if self.broken:
                    raise OSError("backend down")
                return super().seed_for(bins, threshold)

        cache = BrokenSeedCache(telemetry=telemetry)
        ctrl = controller(cache=cache, telemetry=telemetry)
        ctrl.register(bins, [0.95])
        feed(ctrl, bins, 2, 0.55, 30)

        report = ctrl.revalidate_drifted()
        assert report.failures == 1
        assert report.recalibrated_menus == 0
        assert ctrl.resolve(bins).calibration_epoch == 0  # lineage untouched
        assert telemetry.counter("drift.failed_revalidations") == 1

        cache.broken = False
        retry = ctrl.revalidate_drifted()
        assert retry.recalibrated_menus == 1
        assert ctrl.resolve(bins).calibration_epoch == 1

    def test_second_generation_drift_bumps_epoch_again(self, bins):
        cache = PlanCache()
        ctrl = controller(cache=cache)
        ctrl.register(bins, [0.95])
        feed(ctrl, bins, 2, 0.55, 30)
        ctrl.revalidate_drifted()
        feed(ctrl, bins, 2, 0.30, 30)  # keeps decaying
        ctrl.revalidate_drifted()
        active, recalibrations = ctrl.lineage(bins)
        assert active.calibration_epoch == 2
        assert recalibrations == 2

    def test_warm_started_build_matches_cold_build(self, bins):
        cache = PlanCache()
        ctrl = controller(cache=cache)
        cache.queue_for(bins, 0.95)
        ctrl.register(bins, [0.95])
        feed(ctrl, bins, 2, 0.55, 30)
        ctrl.revalidate_drifted()
        active, _ = ctrl.lineage(bins)
        warm = cache.queue_for(active, 0.95)
        cold = build_queue(active, 0.95)
        assert [c.counts for c in warm.elements()] == (
            [c.counts for c in cold.elements()]
        )


class TestGauges:
    def test_gauges_track_monitored_and_drifted_menus(self, bins):
        ctrl = controller()
        assert ctrl.gauges() == {
            "drift.monitored_menus": 0.0,
            "drift.drifted_menus": 0.0,
            "drift.max_shortfall": 0.0,
        }
        ctrl.register(bins)
        feed(ctrl, bins, 2, 0.55, 30)
        gauges = ctrl.gauges()
        assert gauges["drift.monitored_menus"] == 1.0
        assert gauges["drift.drifted_menus"] == 1.0
        assert gauges["drift.max_shortfall"] == pytest.approx(0.30, abs=0.03)
