"""End-to-end HTTP transport tests: real sockets, real concurrency.

Each test boots an :class:`HttpSladeServer` on an OS-assigned port inside a
background event-loop thread and drives it with the stdlib
:class:`~repro.service.client.SladeHttpClient` — the same wire path the CI
smoke job and production deployments use.
"""

import asyncio
import io
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.algorithms.registry import create_solver
from repro.cli import _serve_loop
from repro.core.bins import TaskBinSet
from repro.core.problem import SladeProblem
from repro.datasets.jelly import jelly_bin_set
from repro.service import (
    ServiceConfig,
    SladeHttpClient,
    SladeService,
    SolveRequest,
)
from repro.service.client import TransportError
from repro.service.transport.admission import AdmissionController
from repro.service.transport.server import HttpSladeServer

#: The compact inline request form: tiny bodies, server-side construction.
BINS = [[1, 0.9, 0.10], [2, 0.85, 0.18], [3, 0.8, 0.24]]


def inline_request(n=50, threshold=0.9, **extra):
    payload = {
        "kind": "solve_request",
        "version": 1,
        "n": n,
        "threshold": threshold,
        "bins": BINS,
    }
    payload.update(extra)
    return payload


#: A solve that holds the worker executor for roughly a second (cover cost
#: grows superlinearly in n), used by liveness/drain tests.
SLOW_REQUEST = {
    "kind": "solve_request",
    "version": 1,
    "n": 100_000,
    "threshold": 0.95,
    "bins": [[l, 0.78 + 0.006 * l, 0.08 + 0.02 * l] for l in range(1, 11)],
}


class ServerHandle:
    """Run one server inside a dedicated event-loop thread."""

    def __init__(self, **server_kwargs) -> None:
        self._server_kwargs = server_kwargs
        self._ready = threading.Event()
        self._stop: "asyncio.Event" = None
        self._loop: "asyncio.AbstractEventLoop" = None
        self._error: BaseException = None
        self.server: HttpSladeServer = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surfaced by stop()/start()
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.server = HttpSladeServer(**self._server_kwargs)
        await self.server.start("127.0.0.1", 0)
        self._ready.set()
        await self._stop.wait()
        await self.server.close()

    def __enter__(self) -> "ServerHandle":
        self._thread.start()
        assert self._ready.wait(timeout=10), "server failed to start"
        if self._error is not None:
            raise self._error
        return self

    def __exit__(self, *_exc_info) -> None:
        self.stop()

    def stop(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
            self._thread.join(timeout=30)
            assert not self._thread.is_alive(), "server thread leaked"
        if self._error is not None:
            raise self._error

    @property
    def base_url(self) -> str:
        return self.server.base_url

    def client(self, **kwargs) -> SladeHttpClient:
        return SladeHttpClient(self.base_url, **kwargs)


class TestSolveRoundtrips:
    def test_inline_solve_matches_direct_solver(self):
        with ServerHandle() as handle:
            reply = handle.client().solve(inline_request())
            assert reply.status == 200
            assert reply.payload["ok"] is True
            assert reply.payload["cache"] == "miss"
            assert reply.payload["plan"] is not None
            response = reply.solve_response()
            bins = TaskBinSet.from_triples([tuple(entry) for entry in BINS])
            direct = create_solver("opq").solve(
                SladeProblem.homogeneous(50, 0.9, bins)
            )
            assert response.total_cost == pytest.approx(direct.total_cost)

    def test_typed_request_roundtrip_and_plan_toggle(self):
        bins = jelly_bin_set(5)
        request = SolveRequest(
            problem=SladeProblem.homogeneous(40, 0.9, bins),
            request_id="typed-1",
        )
        with ServerHandle() as handle:
            with_plan = handle.client().solve(request)
            assert with_plan.payload["request_id"] == "typed-1"
            assert with_plan.payload["plan"] is not None
            without = handle.client().solve(request, include_plan=False)
            assert without.payload["plan"] is None
            assert without.payload["total_cost"] == pytest.approx(
                with_plan.payload["total_cost"]
            )

    def test_batch_endpoint_orders_and_isolates_failures(self):
        with ServerHandle() as handle:
            reply = handle.client().solve_batch(
                [
                    inline_request(n=30, request_id="good-0"),
                    {"kind": "solve_request", "version": 1},  # no problem given
                    inline_request(n=40, request_id="good-2"),
                ]
            )
            assert reply.status == 200
            responses = reply.payload["responses"]
            assert [entry["ok"] for entry in responses] == [True, False, True]
            assert responses[0]["request_id"] == "good-0"
            assert responses[2]["request_id"] == "good-2"
            assert responses[1]["error"]["type"] == "SerializationError"

    def test_solver_failure_is_http_200_with_envelope(self):
        with ServerHandle() as handle:
            reply = handle.client().solve(inline_request(solver="nope"))
            assert reply.status == 200
            assert reply.payload["ok"] is False
            assert reply.payload["error"]["type"] == "RequestValidationError"


class TestTransportErrors:
    def test_malformed_json_is_400_with_envelope(self):
        with ServerHandle() as handle:
            client = handle.client()
            reply = client._request("POST", "/v1/solve", None, None)
            assert reply.status == 400
            assert reply.payload["kind"] == "solve_response"
            assert reply.payload["ok"] is False
            assert reply.payload["error"]["type"] == "JSONDecodeError"

    def test_http_envelope_matches_jsonlines_envelope(self):
        """Satellite fix: one failure shape across both transports."""
        with ServerHandle() as handle:
            http_reply = handle.client()._request("POST", "/v1/solve", None, None)
        stream = io.StringIO("this is not json\n")
        out = io.StringIO()
        real_stdout, sys.stdout = sys.stdout, out
        try:
            with SladeService(ServiceConfig()) as service:
                _serve_loop(service, stream, include_plans=True)
        finally:
            sys.stdout = real_stdout
        jsonl_payload = json.loads(out.getvalue())
        assert set(jsonl_payload) == set(http_reply.payload)
        assert jsonl_payload["error"]["type"] == http_reply.payload["error"]["type"]
        assert jsonl_payload["cache"] == http_reply.payload["cache"] == "none"

    def test_unknown_route_and_wrong_method(self):
        with ServerHandle() as handle:
            client = handle.client()
            missing = client._request("GET", "/v3/solve", None, None)
            assert missing.status == 404
            assert missing.payload["error"]["type"] == "SladeError"
            for path in ("/v1/solve", "/v2/solve"):
                wrong = client._request("GET", path, None, None)
                assert wrong.status == 405

    def test_batch_payload_must_be_a_request_list(self):
        with ServerHandle() as handle:
            reply = handle.client()._request(
                "POST", "/v1/solve/batch", {"requests": []}, None
            )
            assert reply.status == 400
            assert "requests" in reply.payload["error"]["message"]

    def test_oversized_header_line_answers_431(self):
        """A header overrunning the stream buffer must get a structured 431,
        not an unhandled ValueError that resets the connection."""
        with ServerHandle() as handle:
            conn = socket.create_connection(
                (handle.server.host, handle.server.port), timeout=10
            )
            try:
                conn.sendall(
                    b"GET /healthz HTTP/1.1\r\nX-Big: "
                    + b"a" * (100 * 1024)
                    + b"\r\n\r\n"
                )
                head = conn.recv(65536).split(b"\r\n", 1)[0]
                assert b"431" in head
            finally:
                conn.close()

    def test_mixed_tenant_batch_is_rejected(self):
        """One batch, one tenant: mixed batches would charge the whole cost
        to a single bucket and break tenant isolation."""
        with ServerHandle() as handle:
            reply = handle.client().solve_batch(
                [
                    inline_request(n=20, tenant="team-a"),
                    inline_request(n=21, tenant="team-b"),
                ]
            )
            assert reply.status == 400
            assert "one tenant" in reply.payload["error"]["message"]

    def test_unservable_batch_cost_is_400_without_retry_after(self):
        admission = AdmissionController(rate=5.0)  # burst defaults to 5
        with ServerHandle(admission=admission) as handle:
            reply = handle.client(tenant="bulk").solve_batch(
                [inline_request(n=20 + i) for i in range(10)]
            )
            assert reply.status == 400
            assert reply.payload["error"]["type"] == "RequestValidationError"
            assert reply.header("Retry-After") is None


class TestMicroBatchCoalescing:
    def test_concurrent_clients_share_one_micro_batch(self):
        """Acceptance criterion: concurrency provably coalesces, asserted
        via the /metrics batch-size counters."""
        config = ServiceConfig(max_batch_size=8, max_wait_seconds=0.15)
        with ServerHandle(config=config) as handle:
            barrier = threading.Barrier(6)
            replies = [None] * 6

            def fire(index: int) -> None:
                client = handle.client()
                barrier.wait()
                replies[index] = client.solve(
                    inline_request(n=40 + index, request_id=f"c{index}"),
                    include_plan=False,
                )

            threads = [
                threading.Thread(target=fire, args=(index,)) for index in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert all(reply is not None for reply in replies)
            assert all(reply.payload["ok"] for reply in replies)
            # At least one flush carried several requests...
            assert max(reply.payload["batch_size"] for reply in replies) > 1
            metrics = handle.client().metrics().payload
            assert metrics["service.batch_size.max"] > 1
            assert metrics["service.flushes"] < 6
            # ...and the shared menu was built exactly once.
            assert metrics["cache.misses"] == 1
            assert metrics["cache.hits"] == 5
            assert metrics["service.queue_wait_seconds.count"] == 6


class TestAdmissionOverHttp:
    def test_tenant_quota_rejections_do_not_affect_other_tenants(self):
        admission = AdmissionController(rate=0.001, burst=2)
        with ServerHandle(admission=admission) as handle:
            client_a = handle.client(tenant="team-a")
            client_b = handle.client(tenant="team-b")
            assert client_a.solve(inline_request(n=20)).status == 200
            assert client_a.solve(inline_request(n=21)).status == 200
            rejected = client_a.solve(inline_request(n=22))
            assert rejected.status == 429
            assert rejected.payload["ok"] is False
            assert rejected.payload["error"]["type"] == "RateLimitedError"
            assert int(rejected.header("Retry-After")) >= 1
            # Tenant B's untouched bucket still admits.
            assert client_b.solve(inline_request(n=23)).status == 200
            metrics = handle.client().metrics().payload
            assert metrics["admission.rate_limited"] == 1
            assert metrics["admission.admitted"] == 3
            assert metrics["http.responses.429"] == 1

    def test_tenant_from_request_field_beats_header(self):
        admission = AdmissionController(rate=0.001, burst=1)
        with ServerHandle(admission=admission) as handle:
            client = handle.client(tenant="header-tenant")
            assert (
                client.solve(inline_request(tenant="field-tenant")).status == 200
            )
            # The field tenant's bucket is now empty; the header tenant's
            # provisional charge was refunded, so its bucket is untouched.
            assert client.solve(inline_request(tenant="field-tenant")).status == 429
            assert client.solve(inline_request(n=30)).status == 200

    def test_exhausted_header_tenant_rejected_before_parse(self):
        """The provisional pre-parse charge: an out-of-quota header tenant
        is rejected without the server parsing its (possibly huge) body."""
        admission = AdmissionController(rate=0.001, burst=1)
        with ServerHandle(admission=admission) as handle:
            client = handle.client(tenant="spender")
            assert client.solve(inline_request(n=20)).status == 200
            rejected = client._request("POST", "/v1/solve", None, None)
            # An empty (unparseable) body still gets the 429, proving
            # admission ran first; otherwise this would be a 400.
            assert rejected.status == 429
            metrics = handle.client().metrics().payload
            assert "http.responses.400" not in metrics

    def test_batch_charges_its_size(self):
        admission = AdmissionController(rate=0.001, burst=3)
        with ServerHandle(admission=admission) as handle:
            client = handle.client(tenant="bulk")
            good = client.solve_batch(
                [inline_request(n=20 + i) for i in range(3)], include_plan=False
            )
            assert good.status == 200
            rejected = client.solve_batch([inline_request(n=40)])
            assert rejected.status == 429

    def test_global_capacity_is_503(self):
        admission = AdmissionController(max_total_inflight=1)
        with ServerHandle(admission=admission) as handle:
            started = threading.Event()
            slow_reply = {}

            def slow() -> None:
                client = handle.client(tenant="slow")
                started.set()
                slow_reply["reply"] = client.solve(
                    SLOW_REQUEST, include_plan=False
                )

            thread = threading.Thread(target=slow)
            thread.start()
            started.wait()
            time.sleep(0.3)  # let the slow request enter the executor
            rejected = handle.client(tenant="other").solve(
                inline_request(n=25), include_plan=False
            )
            assert rejected.status == 503
            assert rejected.payload["error"]["type"] == "OverloadedError"
            thread.join(timeout=60)
            assert slow_reply["reply"].status == 200
            assert slow_reply["reply"].payload["ok"] is True


class TestLivenessAndShutdown:
    def test_healthz_stays_responsive_during_long_solve(self):
        with ServerHandle() as handle:
            started = threading.Event()
            slow_reply = {}

            def slow() -> None:
                client = handle.client()
                started.set()
                slow_reply["reply"] = client.solve(SLOW_REQUEST, include_plan=False)

            thread = threading.Thread(target=slow)
            thread.start()
            started.wait()
            time.sleep(0.2)  # ensure the solve occupies the executor
            t0 = time.perf_counter()
            health = handle.client().healthz()
            latency = time.perf_counter() - t0
            assert health.status == 200
            assert health.payload["status"] == "ok"
            assert latency < 1.0, f"healthz took {latency:.2f}s during a solve"
            thread.join(timeout=60)
            assert slow_reply["reply"].payload["ok"] is True

    def test_close_drains_inflight_requests(self):
        with ServerHandle() as handle:
            started = threading.Event()
            outcome = {}

            def inflight() -> None:
                client = handle.client()
                started.set()
                outcome["reply"] = client.solve(SLOW_REQUEST, include_plan=False)

            thread = threading.Thread(target=inflight)
            thread.start()
            started.wait()
            time.sleep(0.3)  # the request is being solved when we close
            handle.stop()
            thread.join(timeout=60)
            assert outcome["reply"].status == 200
            assert outcome["reply"].payload["ok"] is True
        # The socket is gone after shutdown.
        with pytest.raises(TransportError):
            SladeHttpClient(handle.base_url, timeout=2).healthz()

    def test_metrics_text_format_is_prometheus(self):
        with ServerHandle() as handle:
            handle.client().solve(inline_request(), include_plan=False)
            text = handle.client().metrics(fmt="text").text
            lines = dict(
                line.rsplit(" ", 1) for line in text.strip().splitlines()
            )
            assert lines["slade_cache_misses"] == "1"
            assert "slade_cache_entries" in lines
            assert "slade_service_batch_size_max" in lines

    def test_metrics_text_exposes_queue_wait_histogram(self):
        with ServerHandle() as handle:
            handle.client().solve(inline_request(), include_plan=False)
            text = handle.client().metrics(fmt="text").text
            # Native Prometheus histogram exposition for queue waits: one
            # cumulative line per bucket boundary plus +Inf and _sum.
            assert 'slade_service_queue_wait_seconds_bucket{le="0.01"}' in text
            assert 'slade_service_queue_wait_seconds_bucket{le="+Inf"} 1' in text
            assert "slade_service_queue_wait_seconds_sum" in text
            assert "slade_service_queue_wait_seconds_count 1" in text
            # The JSON form keeps the flattened cumulative-bucket keys.
            metrics = handle.client().metrics().payload
            bucket_keys = [
                key for key in metrics
                if key.startswith("service.queue_wait_seconds.bucket.le_")
            ]
            assert bucket_keys
            assert metrics["service.queue_wait_seconds.bucket.le_inf"] == 1.0


class TestServeHttpCli:
    def test_cli_serves_and_sigterm_drains_to_exit_zero(self, tmp_path):
        """`repro serve --http` boots, answers over the wire, and a SIGTERM
        produces a clean (exit 0) drain — the CI smoke job's contract."""
        src_root = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src_root}{os.pathsep}{env.get('PYTHONPATH', '')}"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--http", "127.0.0.1:0", "--stats",
                "--cache", f"sqlite:{tmp_path / 'plans.db'}",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            line = proc.stderr.readline().strip()
            assert line.startswith("listening on http://"), line
            base_url = line.split(" ", 2)[2]
            client = SladeHttpClient(base_url, timeout=30)
            reply = client.solve(inline_request())
            assert reply.status == 200 and reply.payload["ok"] is True
            assert client.healthz().payload["status"] == "ok"
            proc.send_signal(signal.SIGTERM)
            _stdout, stderr = proc.communicate(timeout=30)
            assert proc.returncode == 0, stderr
            assert "served" in stderr  # --stats summary after the drain
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

    def test_port_collision_surfaces_as_slade_error_exit(self):
        """A taken port fails fast with the CLI's uniform error handling."""
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        src_root = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src_root}{os.pathsep}{env.get('PYTHONPATH', '')}"
        try:
            proc = subprocess.run(
                [
                    sys.executable, "-m", "repro", "serve",
                    "--http", f"127.0.0.1:{port}",
                ],
                env=env,
                capture_output=True,
                text=True,
                timeout=60,
            )
            assert proc.returncode == 2
            assert proc.stderr.strip().startswith("error: cannot serve on")
            assert "Traceback" not in proc.stderr
        finally:
            blocker.close()


class TestFeedbackRoute:
    def test_feedback_records_observations(self):
        with ServerHandle() as handle:
            client = handle.client()
            reply = client._request(
                "POST", "/v2/feedback",
                {"bins": BINS, "observations": [[2, True], [2, False]]},
                None,
            )
            assert reply.status == 200
            assert reply.payload["kind"] == "feedback_response"
            assert reply.payload["recorded"] == 2
            metrics = client.metrics().payload
            assert metrics["drift.observations"] == 2
            assert metrics["drift.feedback_requests"] == 1
            assert metrics["drift.monitored_menus"] == 1.0

    def test_malformed_feedback_is_400(self):
        with ServerHandle() as handle:
            client = handle.client()
            for payload in (
                None,                                           # not JSON
                {"bins": BINS},                                 # no observations
                {"bins": BINS, "observations": [[1]]},          # bad pair
                {"observations": [[1, True]]},                  # no bins
            ):
                reply = client._request("POST", "/v2/feedback", payload, None)
                assert reply.status == 400, payload
                assert reply.payload["ok"] is False

    def test_feedback_is_post_only(self):
        with ServerHandle() as handle:
            reply = handle.client()._request("GET", "/v2/feedback", None, None)
            assert reply.status == 405

    def test_feedback_honours_auth_token(self):
        with ServerHandle(auth_token="sesame") as handle:
            payload = {"bins": BINS, "observations": [[1, True]]}
            denied = handle.client()._request(
                "POST", "/v2/feedback", payload, None
            )
            assert denied.status == 401
            allowed = handle.client(auth_token="sesame").feedback(payload)
            assert allowed.status == 200

    def test_metrics_exposes_drift_gauges(self):
        with ServerHandle() as handle:
            metrics = handle.client().metrics().payload
            for gauge in (
                "drift.monitored_menus",
                "drift.drifted_menus",
                "drift.max_shortfall",
            ):
                assert gauge in metrics
