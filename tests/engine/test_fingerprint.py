"""Tests for the stable content fingerprints behind the engine's cache keys."""

from repro.core.bins import TaskBinSet
from repro.core.problem import SladeProblem
from repro.core.task import CrowdsourcingTask
from repro.engine.fingerprint import opq_key, problem_key

TRIPLES = [(1, 0.9, 0.10), (2, 0.85, 0.18), (3, 0.8, 0.24)]


class TestBinSetFingerprint:
    def test_equal_content_equal_fingerprint(self):
        a = TaskBinSet.from_triples(TRIPLES, name="a")
        b = TaskBinSet.from_triples(TRIPLES, name="b")
        assert a.fingerprint == b.fingerprint

    def test_name_is_excluded(self):
        a = TaskBinSet.from_triples(TRIPLES, name="first")
        b = TaskBinSet.from_triples(TRIPLES, name="second")
        assert a.fingerprint == b.fingerprint

    def test_order_of_construction_is_irrelevant(self):
        a = TaskBinSet.from_triples(TRIPLES)
        b = TaskBinSet.from_triples(list(reversed(TRIPLES)))
        assert a.fingerprint == b.fingerprint

    def test_any_field_change_changes_fingerprint(self):
        base = TaskBinSet.from_triples(TRIPLES)
        for mutated in (
            [(1, 0.9, 0.10), (2, 0.85, 0.18)],           # bin removed
            [(1, 0.9, 0.10), (2, 0.85, 0.18), (4, 0.8, 0.24)],  # cardinality
            [(1, 0.9, 0.10), (2, 0.85, 0.18), (3, 0.81, 0.24)],  # confidence
            [(1, 0.9, 0.10), (2, 0.85, 0.18), (3, 0.8, 0.25)],   # cost
        ):
            assert TaskBinSet.from_triples(mutated).fingerprint != base.fingerprint

    def test_tiny_float_changes_are_visible(self):
        a = TaskBinSet.from_triples([(1, 0.9, 0.1)])
        b = TaskBinSet.from_triples([(1, 0.9 + 1e-15, 0.1)])
        assert a.fingerprint != b.fingerprint

    def test_stable_across_processes(self):
        # The digest must not depend on Python's per-process hash salt;
        # pin a literal value so any algorithm change is a conscious one.
        assert TaskBinSet.from_triples(TRIPLES).fingerprint == (
            TaskBinSet.from_triples(TRIPLES).fingerprint
        )
        assert len(TaskBinSet.from_triples(TRIPLES).fingerprint) == 16


class TestTaskFingerprint:
    def test_thresholds_and_ids_matter(self):
        a = CrowdsourcingTask.homogeneous(5, 0.9)
        b = CrowdsourcingTask.homogeneous(5, 0.9)
        c = CrowdsourcingTask.homogeneous(5, 0.91)
        d = CrowdsourcingTask.homogeneous(6, 0.9)
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != c.fingerprint
        assert a.fingerprint != d.fingerprint

    def test_payload_and_name_excluded(self):
        from repro.core.task import AtomicTask

        a = CrowdsourcingTask([AtomicTask(0, 0.9, {"truth": 1})], name="x")
        b = CrowdsourcingTask([AtomicTask(0, 0.9)], name="y")
        assert a.fingerprint == b.fingerprint


class TestProblemAndKeyHelpers:
    def test_problem_fingerprint_combines_parts(self):
        bins = TaskBinSet.from_triples(TRIPLES)
        a = SladeProblem.homogeneous(4, 0.95, bins, name="a")
        b = SladeProblem.homogeneous(4, 0.95, bins, name="b")
        c = SladeProblem.homogeneous(4, 0.9, bins)
        assert a.fingerprint == b.fingerprint == problem_key(a)
        assert a.fingerprint != c.fingerprint

    def test_opq_key_is_bit_exact_in_threshold(self):
        bins = TaskBinSet.from_triples(TRIPLES)
        assert opq_key(bins, 0.9) == opq_key(bins, 0.9)
        assert opq_key(bins, 0.9) != opq_key(bins, 0.9 + 1e-15)
        assert opq_key(bins, 0.9)[0] == bins.fingerprint


class TestCalibrationEpochFingerprint:
    def test_epoch_changes_fingerprint_with_identical_bins(self):
        base = TaskBinSet.from_triples(TRIPLES)
        bumped = base.next_epoch()
        assert bumped.bins() == base.bins()
        assert bumped.fingerprint != base.fingerprint

    def test_every_epoch_gets_its_own_fingerprint(self):
        base = TaskBinSet.from_triples(TRIPLES)
        fingerprints = {base.with_epoch(epoch).fingerprint for epoch in range(5)}
        assert len(fingerprints) == 5

    def test_epoch_zero_fingerprint_is_the_legacy_one(self):
        # Epoch 0 contributes no token, so caches populated before the
        # epoch field existed keep resolving for un-recalibrated menus.
        base = TaskBinSet.from_triples(TRIPLES)
        explicit = TaskBinSet.from_triples(TRIPLES)
        assert explicit.with_epoch(0).fingerprint == base.fingerprint

    def test_opq_key_never_aliases_across_epochs(self):
        base = TaskBinSet.from_triples(TRIPLES)
        recalibrated = base.next_epoch()
        assert opq_key(base, 0.95) != opq_key(recalibrated, 0.95)

    def test_corrected_menu_never_aliases_ancestor(self):
        from repro.crowd.monitoring import QualityMonitor

        base = TaskBinSet.from_triples(TRIPLES)
        monitor = QualityMonitor(base, min_observations=10)
        # Feed observations that exactly match the assumed confidences: the
        # corrected menu is numerically identical yet must re-key every plan.
        for _ in range(9):
            monitor.record(1, True)
        monitor.record(1, False)  # 9/10 correct == the assumed 0.9 exactly
        corrected = monitor.corrected_bin_set()
        assert corrected.calibration_epoch == base.calibration_epoch + 1
        assert opq_key(corrected, 0.95) != opq_key(base, 0.95)
