"""Tests for the batch planner: dispatch, specs, options, statistics."""

import pytest

from repro.core.problem import SladeProblem
from repro.datasets.jelly import jelly_bin_set
from repro.engine import BatchPlanner, BatchSpec, PlanCache
from repro.engine.planner import EXECUTORS


@pytest.fixture
def bins():
    return jelly_bin_set(10)


@pytest.fixture
def spec(bins):
    return BatchSpec(
        bins=bins, n_values=(20, 35, 50), thresholds=(0.9, 0.95), name="t"
    )


class TestBatchSpec:
    def test_grid_size_and_names(self, spec):
        problems = spec.problems()
        assert len(problems) == len(spec) == 6
        assert problems[0].name == "t-t0.9-n20"
        assert {p.n for p in problems} == {20, 35, 50}

    def test_repeat_replicates_grid(self, bins):
        spec = BatchSpec(bins=bins, n_values=(10,), thresholds=(0.9,), repeat=3)
        problems = spec.problems()
        assert len(problems) == 3
        assert problems[0].name.endswith("#0")
        assert problems[2].name.endswith("#2")

    def test_empty_grids_rejected(self, bins):
        from repro.core.errors import InvalidProblemError

        with pytest.raises(InvalidProblemError):
            BatchSpec(bins=bins, n_values=())
        with pytest.raises(InvalidProblemError):
            BatchSpec(bins=bins, thresholds=())
        with pytest.raises(InvalidProblemError):
            BatchSpec(bins=bins, repeat=0)


class TestPlannerBasics:
    def test_solve_matches_cold_solver(self, bins):
        from repro.algorithms.registry import create_solver

        problem = SladeProblem.homogeneous(30, 0.9, bins)
        planned = BatchPlanner().solve(problem, "opq")
        cold = create_solver("opq").solve(problem)
        assert planned.total_cost == cold.total_cost
        assert planned.feasible

    def test_solve_many_returns_items_in_order(self, spec):
        batch = BatchPlanner().solve_many(spec, solver="opq")
        assert [item.index for item in batch] == list(range(6))
        assert [item.problem.name for item in batch] == [
            p.name for p in spec.problems()
        ]
        assert batch.all_feasible
        assert batch.total_cost == pytest.approx(
            sum(item.total_cost for item in batch)
        )

    def test_cache_statistics_cover_the_batch(self, spec):
        batch = BatchPlanner().solve_many(spec, solver="opq")
        stats = batch.stats
        # Six instances, two distinct thresholds -> 2 misses, 4 hits.
        assert stats.cache_misses == 2
        assert stats.cache_hits == 4
        assert stats.cache_hit_rate == pytest.approx(4 / 6)
        assert stats.build_seconds > 0.0
        assert stats.solve_seconds > 0.0
        assert stats.wall_seconds > 0.0
        assert stats.instances == 6
        assert stats.as_dict()["cache_hit_rate"] == stats.cache_hit_rate

    def test_shared_cache_across_planners(self, spec):
        cache = PlanCache()
        BatchPlanner(cache=cache).solve_many(spec, "opq")
        second = BatchPlanner(cache=cache).solve_many(spec, "opq")
        assert second.stats.cache_misses == 0
        assert second.stats.cache_hit_rate == 1.0

    def test_non_cacheable_solver_still_runs(self, bins):
        problems = [SladeProblem.homogeneous(10, 0.9, bins) for _ in range(2)]
        batch = BatchPlanner().solve_many(problems, solver="greedy")
        assert batch.all_feasible
        assert batch.stats.cache_misses == 0
        assert batch.stats.cache_hits == 0

    def test_unknown_solver_raises(self, bins):
        with pytest.raises(KeyError):
            BatchPlanner().solve(SladeProblem.homogeneous(5, 0.9, bins), "nope")

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            BatchPlanner(executor="gpu")
        assert set(EXECUTORS) == {"serial", "thread", "process"}


class TestOptions:
    def test_planner_level_options_apply(self, bins):
        problem = SladeProblem.homogeneous(40, 0.9, bins)
        planner = BatchPlanner(
            solver_options={"baseline": {"chunk_size": 10, "seed": 0}}
        )
        result = planner.solve(problem, "baseline")
        assert result.feasible

    def test_call_options_override_planner_options(self, bins):
        problem = SladeProblem.homogeneous(12, 0.9, bins)
        planner = BatchPlanner(
            solver_options={"baseline": {"chunk_size": 4, "seed": 0}}
        )
        result = planner.solve(
            problem, "baseline", options={"chunk_size": 12, "seed": 0}
        )
        assert result.feasible

    def test_verify_override(self, bins):
        problem = SladeProblem.homogeneous(8, 0.9, bins)
        planner = BatchPlanner(verify=False)
        # Explicit verify=True at call time must win over the planner default.
        result = planner.solve(problem, "opq", verify=True)
        assert result.feasible


class TestProcessPrewarm:
    def test_prewarm_covers_both_direct_and_group_threshold_keys(self, bins):
        """The parent must warm every key a worker-side solver can request.

        OPQSolver asks for the raw homogeneous threshold; OPQExtendedSolver
        asks for the Algorithm 4 group threshold, a residual round-trip of
        it that is not always bit-identical.  Cache keys are bit-exact, so
        the prewarm covers both — otherwise workers silently rebuild queues.
        """
        from repro.algorithms.opq_extended import group_thresholds
        from repro.engine.fingerprint import opq_key

        threshold = 0.67  # a value whose residual round-trip differs from it
        problem = SladeProblem.homogeneous(10, threshold, bins)
        planner = BatchPlanner(executor="process")
        planner._prewarm([problem], "opq-extended")
        assert opq_key(bins, threshold) in planner.cache
        for group_threshold in group_thresholds([threshold]):
            assert opq_key(bins, group_threshold) in planner.cache

    def test_homogeneous_opq_extended_process_batch_hits_prewarmed_cache(self, bins):
        problems = [
            SladeProblem.homogeneous(n, 0.67, bins) for n in (10, 20, 30)
        ]
        planner = BatchPlanner(executor="process", max_workers=2)
        batch = planner.solve_many(problems, solver="opq-extended")
        assert batch.all_feasible
        # Every worker request is served from the shipped snapshot: the only
        # misses are the parent's prewarm builds.
        worker_requests = len(problems)
        assert batch.stats.cache_hits >= worker_requests


class TestHeterogeneousBatches:
    def test_group_queues_are_shared_across_instances(self, bins):
        from repro.datasets.thresholds import normal_thresholds

        problems = [
            SladeProblem.heterogeneous(
                normal_thresholds(60, mu=0.9, sigma=0.03, seed=seed), bins
            )
            for seed in range(4)
        ]
        batch = BatchPlanner().solve_many(problems, solver="opq-extended")
        assert batch.all_feasible
        assert batch.stats.cache_hits > 0
