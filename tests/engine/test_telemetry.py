"""Telemetry: the shared registry and its cache/planner hook points."""

import threading

import pytest

from repro.core.problem import SladeProblem
from repro.datasets.jelly import jelly_bin_set
from repro.engine import BatchPlanner, PlanCache
from repro.engine.telemetry import (
    QUEUE_WAIT_BUCKETS,
    SeriesStats,
    Telemetry,
    format_bound,
    prometheus_name,
    render_prometheus,
)


class TestTelemetryRegistry:
    def test_counters_accumulate(self):
        telemetry = Telemetry()
        telemetry.increment("a.b")
        telemetry.increment("a.b", 2.5)
        assert telemetry.counter("a.b") == pytest.approx(3.5)
        assert telemetry.counter("never.touched") == 0.0

    def test_series_summary(self):
        telemetry = Telemetry()
        for value in (4.0, 1.0, 7.0):
            telemetry.observe("s", value)
        series = telemetry.series("s")
        assert series.count == 3
        assert series.total == pytest.approx(12.0)
        assert series.minimum == 1.0
        assert series.maximum == 7.0
        assert series.last == 7.0
        assert series.mean == pytest.approx(4.0)
        assert telemetry.series("empty").count == 0
        assert telemetry.series("empty").mean == 0.0

    def test_name_kind_conflicts_raise(self):
        telemetry = Telemetry()
        telemetry.increment("x")
        with pytest.raises(ValueError):
            telemetry.observe("x", 1.0)
        telemetry.observe("y", 1.0)
        with pytest.raises(ValueError):
            telemetry.increment("y")

    def test_snapshot_flattens_everything(self):
        telemetry = Telemetry()
        telemetry.increment("hits", 2)
        telemetry.observe("batch", 3.0)
        snapshot = telemetry.snapshot()
        assert snapshot["hits"] == 2
        assert snapshot["batch.count"] == 1.0
        assert snapshot["batch.total"] == 3.0
        assert snapshot["batch.mean"] == 3.0
        # Sorted, JSON-friendly, detached from the registry.
        assert list(snapshot) == sorted(snapshot)
        telemetry.increment("hits")
        assert snapshot["hits"] == 2

    def test_reset(self):
        telemetry = Telemetry()
        telemetry.increment("a")
        telemetry.observe("b", 1.0)
        telemetry.reset()
        assert telemetry.snapshot() == {}

    def test_thread_safety_under_contention(self):
        telemetry = Telemetry()

        def hammer():
            for _ in range(1000):
                telemetry.increment("n")
                telemetry.observe("v", 1.0)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert telemetry.counter("n") == 4000
        assert telemetry.series("v").count == 4000

    def test_series_stats_standalone(self):
        series = SeriesStats()
        series.observe(2.0)
        series.observe(-1.0)
        assert (series.minimum, series.maximum) == (-1.0, 2.0)


class TestHistogramBuckets:
    """Queue-wait (and round-trip) series record real distribution buckets."""

    def test_boundary_values_land_in_their_le_bucket(self):
        # Prometheus `le` semantics: a value exactly on a boundary counts in
        # that boundary's bucket, not the next one up.
        series = SeriesStats(bucket_bounds=(0.01, 0.1, 1.0))
        for value in (0.01, 0.1, 1.0):
            series.observe(value)
        assert series.bucket_counts == [1, 1, 1, 0]

    def test_overflow_bucket_catches_values_past_the_last_bound(self):
        series = SeriesStats(bucket_bounds=(0.01, 0.1))
        series.observe(0.5)
        series.observe(99.0)
        assert series.bucket_counts == [0, 0, 2]

    def test_cumulative_buckets_are_monotone_and_end_at_count(self):
        series = SeriesStats(bucket_bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            series.observe(value)
        cumulative = series.cumulative_buckets()
        assert cumulative == [(1.0, 1), (2.0, 2), (4.0, 3)]
        # The implicit +Inf bucket is the total count.
        assert series.count == 4

    def test_observe_with_buckets_creates_histogram_series(self):
        telemetry = Telemetry()
        telemetry.observe("wait", 0.003, buckets=(0.001, 0.01, 0.1))
        telemetry.observe("wait", 0.05, buckets=(0.001, 0.01, 0.1))
        series = telemetry.series("wait")
        assert series.bucket_bounds == (0.001, 0.01, 0.1)
        assert series.bucket_counts == [0, 1, 1, 0]

    def test_first_bucket_declaration_wins(self):
        telemetry = Telemetry()
        telemetry.observe("wait", 0.5, buckets=(1.0,))
        telemetry.observe("wait", 0.5, buckets=(2.0, 3.0))  # ignored
        assert telemetry.series("wait").bucket_bounds == (1.0,)
        assert telemetry.series("wait").count == 2

    def test_unbucketed_series_remain_unbucketed(self):
        telemetry = Telemetry()
        telemetry.observe("plain", 1.0)
        assert telemetry.series("plain").bucket_bounds is None
        assert telemetry.histograms() == {}

    def test_snapshot_flattens_cumulative_buckets(self):
        telemetry = Telemetry()
        for value in (0.002, 0.02, 5.0):
            telemetry.observe("wait", value, buckets=(0.01, 0.1, 1.0))
        snapshot = telemetry.snapshot()
        assert snapshot["wait.bucket.le_0.01"] == 1.0
        assert snapshot["wait.bucket.le_0.1"] == 2.0
        assert snapshot["wait.bucket.le_1"] == 2.0
        assert snapshot["wait.bucket.le_inf"] == 3.0
        assert snapshot["wait.count"] == 3.0

    def test_histograms_returns_detached_copies(self):
        telemetry = Telemetry()
        telemetry.observe("wait", 0.5, buckets=(1.0, 2.0))
        histograms = telemetry.histograms()
        hist = histograms["wait"]
        assert hist.bounds == (1.0, 2.0)
        assert hist.cumulative == (1, 1)
        assert hist.count == 1
        assert hist.total == 0.5
        telemetry.observe("wait", 0.5)
        assert histograms["wait"].count == 1  # a copy, not a view

    def test_series_copy_detaches_bucket_counts(self):
        telemetry = Telemetry()
        telemetry.observe("wait", 0.5, buckets=(1.0,))
        copy = telemetry.series("wait")
        telemetry.observe("wait", 0.5)
        assert copy.bucket_counts == [1, 0]

    def test_default_queue_wait_bounds_are_sorted_and_cover_the_flush_window(self):
        assert list(QUEUE_WAIT_BUCKETS) == sorted(QUEUE_WAIT_BUCKETS)
        # The async frontend's default max_wait_seconds (10 ms) must fall on
        # a boundary so "held the full window" is directly readable.
        assert 0.01 in QUEUE_WAIT_BUCKETS


class TestPrometheusRendering:
    def test_name_sanitisation(self):
        assert prometheus_name("cache.hits") == "slade_cache_hits"
        assert prometheus_name("http.responses.429") == "slade_http_responses_429"

    def test_render_includes_extras_and_sorts(self):
        text = render_prometheus({"b": 2.0}, extra={"a": 1.0})
        assert text == "slade_a 1\nslade_b 2\n"

    def test_format_bound_is_compact(self):
        assert format_bound(0.005) == "0.005"
        assert format_bound(1.0) == "1"

    def test_histograms_render_as_native_bucket_lines(self):
        telemetry = Telemetry()
        for value in (0.002, 0.02, 5.0):
            telemetry.observe("q.wait", value, buckets=(0.01, 0.1, 1.0))
        text = render_prometheus(
            telemetry.snapshot(), histograms=telemetry.histograms()
        )
        assert 'slade_q_wait_bucket{le="0.01"} 1' in text
        assert 'slade_q_wait_bucket{le="0.1"} 2' in text
        assert 'slade_q_wait_bucket{le="1"} 2' in text
        assert 'slade_q_wait_bucket{le="+Inf"} 3' in text
        assert "slade_q_wait_sum 5.022" in text
        assert "slade_q_wait_count 3" in text
        # The flattened .bucket.* gauge keys are replaced by the native form.
        assert "bucket_le_" not in text

    def test_flat_bucket_keys_survive_without_histograms_argument(self):
        # JSON consumers read the flattened snapshot directly; the text form
        # only upgrades to native histograms when asked.
        telemetry = Telemetry()
        telemetry.observe("q.wait", 0.5, buckets=(1.0,))
        text = render_prometheus(telemetry.snapshot())
        assert "slade_q_wait_bucket_le_1 1" in text


class TestCacheTelemetryHooks:
    def test_hits_misses_and_build_time(self):
        telemetry = Telemetry()
        cache = PlanCache(telemetry=telemetry)
        bins = jelly_bin_set(6)
        cache.queue_for(bins, 0.9)
        cache.queue_for(bins, 0.9)
        cache.queue_for(bins, 0.92)
        assert telemetry.counter("cache.misses") == 2
        assert telemetry.counter("cache.hits") == 1
        assert telemetry.counter("cache.build_seconds") > 0.0
        # The registry mirrors the cache's own counters.
        stats = cache.stats
        assert (stats.hits, stats.misses) == (1, 2)

    def test_eviction_counter_on_bounded_backend(self):
        telemetry = Telemetry()
        cache = PlanCache(max_entries=2, telemetry=telemetry)
        bins = jelly_bin_set(5)
        for threshold in (0.88, 0.9, 0.92, 0.94):
            cache.queue_for(bins, threshold)
        assert telemetry.counter("cache.evictions") == 2
        assert cache.stats.evictions == 2
        assert cache.stats.entries == 2

    def test_untelemetered_cache_still_counts_evictions_in_stats(self):
        cache = PlanCache(max_entries=1)
        bins = jelly_bin_set(4)
        cache.queue_for(bins, 0.9)
        cache.queue_for(bins, 0.92)
        assert cache.stats.evictions == 1

    def test_cache_stats_since_subtracts_evictions(self):
        cache = PlanCache(max_entries=1)
        bins = jelly_bin_set(4)
        cache.queue_for(bins, 0.9)
        cache.queue_for(bins, 0.92)
        before = cache.stats
        cache.queue_for(bins, 0.94)
        delta = cache.stats.since(before)
        assert delta.evictions == 1
        assert delta.misses == 1


class TestPlannerTelemetryHooks:
    def test_batch_size_series_and_shared_registry(self):
        telemetry = Telemetry()
        planner = BatchPlanner(telemetry=telemetry)
        bins = jelly_bin_set(6)
        problems = [
            SladeProblem.homogeneous(20 + i, 0.9, bins, name=f"p{i}")
            for i in range(3)
        ]
        planner.solve_many(problems, solver="opq")
        planner.solve_many(problems[:2], solver="opq")
        assert telemetry.counter("planner.batches") == 2
        assert telemetry.counter("planner.instances") == 5
        series = telemetry.series("planner.batch_size")
        assert series.count == 2
        assert series.maximum == 3
        # The planner-built cache shares the registry: one distinct
        # (menu, threshold) pair -> one miss, the rest hits.
        assert telemetry.counter("cache.misses") == 1
        assert telemetry.counter("cache.hits") == 4
