"""Tests for the pluggable plan-cache storage backends."""

import pickle

import pytest

from repro.algorithms.opq import build_optimal_priority_queue
from repro.core.bins import TaskBinSet
from repro.engine.backends import (
    BackendSpecError,
    CacheBackend,
    MemoryBackend,
    SQLiteBackend,
    open_backend,
)
from repro.engine.cache import PlanCache
from repro.engine.fingerprint import opq_key

TRIPLES = [(1, 0.9, 0.10), (2, 0.85, 0.18), (3, 0.8, 0.24)]


@pytest.fixture
def bins():
    return TaskBinSet.from_triples(TRIPLES, name="table1")


def build(bins, threshold):
    return build_optimal_priority_queue(bins, threshold)


class TestMemoryBackend:
    def test_round_trip_preserves_identity(self, bins):
        backend = MemoryBackend()
        key = opq_key(bins, 0.95)
        queue = build(bins, 0.95)
        backend.put(key, queue)
        assert backend.get(key) is queue
        assert key in backend
        assert len(backend) == 1

    def test_miss_returns_none(self, bins):
        assert MemoryBackend().get(opq_key(bins, 0.9)) is None

    def test_lru_eviction_order(self, bins):
        backend = MemoryBackend(max_entries=2)
        keys = [opq_key(bins, t) for t in (0.90, 0.95, 0.97)]
        backend.put(keys[0], build(bins, 0.90))
        backend.put(keys[1], build(bins, 0.95))
        backend.get(keys[0])                      # refresh 0.90
        backend.put(keys[2], build(bins, 0.97))   # evicts 0.95
        assert keys[0] in backend
        assert keys[2] in backend
        assert keys[1] not in backend

    def test_merge_keeps_existing_entries(self, bins):
        backend = MemoryBackend()
        key = opq_key(bins, 0.9)
        mine = build(bins, 0.9)
        backend.put(key, mine)
        backend.merge({key: build(bins, 0.9)})
        assert backend.get(key) is mine

    def test_satisfies_protocol(self):
        assert isinstance(MemoryBackend(), CacheBackend)


class TestSQLiteBackend:
    def test_round_trip(self, bins, tmp_path):
        backend = SQLiteBackend(tmp_path / "plans.db")
        key = opq_key(bins, 0.95)
        queue = build(bins, 0.95)
        backend.put(key, queue)
        restored = backend.get(key)
        assert [(c.counts, c.lcm) for c in restored] == [
            (c.counts, c.lcm) for c in queue
        ]
        assert key in backend
        assert len(backend) == 1
        backend.close()

    def test_entries_survive_reopen(self, bins, tmp_path):
        path = tmp_path / "plans.db"
        key = opq_key(bins, 0.95)
        first = SQLiteBackend(path)
        first.put(key, build(bins, 0.95))
        first.close()

        second = SQLiteBackend(path)
        restored = second.get(key)
        assert restored is not None
        assert restored.threshold == 0.95
        second.close()

    def test_memo_returns_same_object_within_process(self, bins, tmp_path):
        backend = SQLiteBackend(tmp_path / "plans.db")
        key = opq_key(bins, 0.9)
        backend.put(key, build(bins, 0.9))
        assert backend.get(key) is backend.get(key)
        backend.close()

    def test_lru_eviction_across_touches(self, bins, tmp_path):
        backend = SQLiteBackend(tmp_path / "plans.db", max_entries=2)
        keys = [opq_key(bins, t) for t in (0.90, 0.95, 0.97)]
        backend.put(keys[0], build(bins, 0.90))
        backend.put(keys[1], build(bins, 0.95))
        backend.get(keys[0])                      # refresh 0.90
        backend.put(keys[2], build(bins, 0.97))   # evicts 0.95
        assert keys[0] in backend
        assert keys[2] in backend
        assert keys[1] not in backend
        backend.close()

    def test_snapshot_is_picklable(self, bins, tmp_path):
        backend = SQLiteBackend(tmp_path / "plans.db")
        backend.put(opq_key(bins, 0.9), build(bins, 0.9))
        snapshot = backend.snapshot()
        assert len(pickle.dumps(snapshot)) > 0
        assert set(snapshot) == {opq_key(bins, 0.9)}
        backend.close()

    def test_merge_ignores_existing_rows(self, bins, tmp_path):
        backend = SQLiteBackend(tmp_path / "plans.db")
        key = opq_key(bins, 0.9)
        backend.put(key, build(bins, 0.9))
        backend.merge({key: build(bins, 0.9), opq_key(bins, 0.95): build(bins, 0.95)})
        assert len(backend) == 2
        backend.close()

    def test_clear_empties_table_and_memo(self, bins, tmp_path):
        backend = SQLiteBackend(tmp_path / "plans.db")
        backend.put(opq_key(bins, 0.9), build(bins, 0.9))
        backend.clear()
        assert len(backend) == 0
        assert backend.get(opq_key(bins, 0.9)) is None
        backend.close()

    def test_satisfies_protocol(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "plans.db")
        assert isinstance(backend, CacheBackend)
        assert backend.persistent
        backend.close()


class TestPlanCacheWithBackends:
    def test_cache_over_sqlite_counts_hits_and_misses(self, bins, tmp_path):
        cache = PlanCache(backend=SQLiteBackend(tmp_path / "plans.db"))
        cache.queue_for(bins, 0.95)
        cache.queue_for(bins, 0.95)
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)
        assert cache.persistent
        cache.close()

    def test_second_cache_on_same_file_starts_warm(self, bins, tmp_path):
        path = tmp_path / "plans.db"
        first = PlanCache(backend=SQLiteBackend(path))
        first.queue_for(bins, 0.95)
        first.close()

        second = PlanCache(backend=SQLiteBackend(path))
        second.queue_for(bins, 0.95)
        stats = second.stats
        assert (stats.hits, stats.misses) == (1, 0)
        assert stats.hit_rate == 1.0
        second.close()

    def test_max_entries_with_custom_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            PlanCache(max_entries=4, backend=MemoryBackend())

    def test_default_backend_is_memory(self):
        cache = PlanCache()
        assert isinstance(cache.backend, MemoryBackend)
        assert not cache.persistent


class TestOpenBackend:
    def test_default_is_unbounded_memory(self):
        backend = open_backend(None)
        assert isinstance(backend, MemoryBackend)
        assert backend.max_entries is None

    def test_memory_with_bound(self):
        backend = open_backend("memory:32")
        assert isinstance(backend, MemoryBackend)
        assert backend.max_entries == 32

    def test_sqlite_prefix_and_suffix_forms(self, tmp_path):
        by_prefix = open_backend(f"sqlite:{tmp_path / 'a.bin'}")
        by_suffix = open_backend(str(tmp_path / "b.sqlite3"))
        assert isinstance(by_prefix, SQLiteBackend)
        assert isinstance(by_suffix, SQLiteBackend)
        by_prefix.close()
        by_suffix.close()

    @pytest.mark.parametrize("spec", ["bogus", "memory:none", "memory:0", "sqlite:"])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(BackendSpecError):
            open_backend(spec)

    def test_bad_bound_via_max_entries_rejected(self):
        with pytest.raises(BackendSpecError):
            open_backend("memory", max_entries=0)

    def test_spec_error_is_both_value_and_slade_error(self):
        from repro.core.errors import SladeError

        assert issubclass(BackendSpecError, ValueError)
        assert issubclass(BackendSpecError, SladeError)


class TestDelete:
    def test_memory_delete_removes_one_key(self, bins):
        backend = MemoryBackend()
        keep, drop = opq_key(bins, 0.90), opq_key(bins, 0.95)
        backend.put(keep, build(bins, 0.90))
        backend.put(drop, build(bins, 0.95))
        assert backend.delete(drop) is True
        assert drop not in backend
        assert keep in backend

    def test_memory_delete_missing_is_false(self, bins):
        assert MemoryBackend().delete(opq_key(bins, 0.9)) is False

    def test_sqlite_delete_removes_row_and_memo(self, bins, tmp_path):
        backend = SQLiteBackend(tmp_path / "plans.db")
        key = opq_key(bins, 0.95)
        backend.put(key, build(bins, 0.95))
        assert backend.get(key) is not None  # populate the memo
        assert backend.delete(key) is True
        assert backend.get(key) is None
        # A second connection sees the row gone too (not just the memo).
        assert SQLiteBackend(tmp_path / "plans.db").get(key) is None

    def test_sqlite_delete_missing_is_false(self, bins, tmp_path):
        backend = SQLiteBackend(tmp_path / "plans.db")
        assert backend.delete(opq_key(bins, 0.9)) is False
