"""Fault injection for the networked plan-cache backends.

The serving-path contract under test: **the shared cache is an accelerator,
never a dependency**.  Whatever the cache servers do — die mid-stream, store
corrupt bytes, answer truncated or checksum-broken frames, or hang past the
client timeout — every solve request must still succeed with a plan
byte-identical to a cache-less run, the only observable difference being
fail-open/corruption telemetry counters.

The sharded-fleet chaos layer extends the same contract across a
consistent-hash ring: killing one of three shards under a replicated ring
must preserve the warm hit rate (reads fail over to the surviving replica),
killing *every* shard must degrade to local rebuilds, and a ``--persist``
server restarted as a real subprocess must come back with all of its keys.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core.bins import TaskBinSet
from repro.core.problem import SladeProblem
from repro.engine.backends import RemoteBackend
from repro.engine.backends.server import CacheServerThread
from repro.engine.backends.wire import (
    HEADER,
    OP_CONTAINS,
    OP_PUT,
    REPLY_MISS,
    REPLY_VALUE,
    decode_header,
    encode_frame,
    encode_key,
    read_frame_from_socket,
)
from repro.engine.fingerprint import opq_key
from repro.engine.telemetry import Telemetry
from repro.io.serialization import plan_to_dict
from repro.service import ServiceConfig, SladeService, SolveRequest

TRIPLES = [(1, 0.9, 0.10), (2, 0.85, 0.18), (3, 0.8, 0.24)]


@pytest.fixture
def bins():
    return TaskBinSet.from_triples(TRIPLES, name="table1")


def plan_bytes(plan) -> bytes:
    return json.dumps(plan_to_dict(plan), sort_keys=True).encode("utf-8")


def problems(bins, count=3, threshold=0.95):
    return [
        SladeProblem.homogeneous(40 + 10 * i, threshold, bins, name=f"fault-{i}")
        for i in range(count)
    ]


def baseline_plan_bytes(bins):
    """Plans from a cache-less (in-memory, fresh) service run."""
    with SladeService(ServiceConfig()) as service:
        return [
            plan_bytes(service.solve(SolveRequest(problem=p)).plan)
            for p in problems(bins)
        ]


def solve_all(service, bins):
    responses = [
        service.solve(SolveRequest(problem=p)) for p in problems(bins)
    ]
    assert all(r.ok for r in responses), [
        str(r.error) for r in responses if not r.ok
    ]
    return [plan_bytes(r.plan) for r in responses]


class _FaultyServer(threading.Thread):
    """A TCP server that reads one valid request frame, then misbehaves.

    Modes
    -----
    ``silent``   — never answers (client read times out).
    ``truncate`` — answers the first half of a valid VALUE frame, then closes.
    ``garbage``  — answers bytes that are not a frame at all.
    ``badsum``   — answers a VALUE frame whose payload byte was flipped after
                   checksumming (detected by the frame-level CRC).
    ``trickle``  — answers a valid frame one byte at a time, each byte just
                   under the per-recv timeout (defeated only by the
                   whole-round-trip deadline).
    """

    def __init__(self, mode: str) -> None:
        super().__init__(daemon=True)
        self.mode = mode
        self.requests_seen = 0
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.port = self._listener.getsockname()[1]
        self._closing = False
        self.start()

    def run(self) -> None:
        while not self._closing:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return
            with conn:
                try:
                    self._serve_one(conn)
                except OSError:
                    pass

    def _serve_one(self, conn: socket.socket) -> None:
        conn.settimeout(5)
        header = self._recv(conn, HEADER.size)
        if header is None:
            return
        _op, key_len, payload_len, _crc = decode_header(header)
        if self._recv(conn, key_len + payload_len) is None:
            return
        self.requests_seen += 1
        reply = encode_frame(REPLY_VALUE, payload=b"x" * 64)
        if self.mode == "silent":
            time.sleep(2.0)
        elif self.mode == "truncate":
            conn.sendall(reply[: len(reply) // 2])
        elif self.mode == "garbage":
            conn.sendall(b"\xde\xad\xbe\xef" * 8)
        elif self.mode == "badsum":
            broken = bytearray(reply)
            broken[-1] ^= 0xFF
            conn.sendall(bytes(broken))
        elif self.mode == "trickle":
            for index in range(len(reply)):
                if self._closing:
                    return
                conn.sendall(reply[index:index + 1])
                time.sleep(0.2)

    @staticmethod
    def _recv(conn: socket.socket, count: int):
        data = b""
        while len(data) < count:
            chunk = conn.recv(count - len(data))
            if not chunk:
                return None
            data += chunk
        return data

    def close(self) -> None:
        self._closing = True
        self._listener.close()


class TestServerDeath:
    def test_unreachable_server_solves_locally(self, bins):
        # Nothing ever listened here: every round trip fails open.
        expected = baseline_plan_bytes(bins)
        telemetry = Telemetry()
        dead_port = _claim_dead_port()
        with SladeService(
            ServiceConfig(
                cache_backend=f"remote://127.0.0.1:{dead_port}?timeout=0.2"
            ),
            telemetry=telemetry,
        ) as service:
            assert solve_all(service, bins) == expected
            stats = service.cache_stats
        # Every queue request degraded to a local rebuild (a miss)...
        assert stats.hits == 0
        assert stats.misses >= 1
        # ...and the degradation is visible to operators, not to callers.
        assert telemetry.counter("remote_cache.fail_open") > 0

    def test_server_killed_mid_stream_degrades_to_local_rebuilds(self, bins):
        expected = baseline_plan_bytes(bins)
        server = CacheServerThread()
        telemetry = Telemetry()
        service = SladeService(
            ServiceConfig(
                cache_backend=(
                    f"remote://{server.host}:{server.port}?timeout=0.5"
                )
            ),
            telemetry=telemetry,
        )
        try:
            # Warm the fleet, then kill the server under the service's feet.
            first = service.solve(SolveRequest(problem=problems(bins)[0]))
            assert first.ok and first.cache == "miss"
            server.stop()
            assert solve_all(service, bins) == expected
            assert telemetry.counter("remote_cache.fail_open") > 0
        finally:
            service.close()
            server.stop()

    def test_tiered_near_tier_survives_far_tier_death(self, bins):
        expected = baseline_plan_bytes(bins)
        server = CacheServerThread()
        telemetry = Telemetry()
        service = SladeService(
            ServiceConfig(
                cache_backend=(
                    f"tiered:memory+remote://{server.host}:{server.port}"
                    "?timeout=0.5"
                )
            ),
            telemetry=telemetry,
        )
        try:
            warm = solve_all(service, bins)
            assert warm == expected
            server.stop()
            # The promoted near tier keeps answering in-process: no fail-open
            # round trips at all for already-hot fingerprints.
            fail_opens_before = telemetry.counter("remote_cache.fail_open")
            assert solve_all(service, bins) == expected
            assert (
                telemetry.counter("remote_cache.fail_open") == fail_opens_before
            )
            assert telemetry.counter("tiered.local_hits") >= len(expected)
        finally:
            service.close()
            server.stop()


class TestCorruptPayloads:
    def test_corrupt_server_entry_is_detected_purged_and_rebuilt(self, bins):
        expected = baseline_plan_bytes(bins)
        with CacheServerThread() as server:
            key = opq_key(bins, 0.95)
            _store_raw(server, encode_key(key), b"this is not a pickle")

            telemetry = Telemetry()
            with SladeService(
                ServiceConfig(
                    cache_backend=f"remote://{server.host}:{server.port}"
                ),
                telemetry=telemetry,
            ) as service:
                assert solve_all(service, bins) == expected
                # The poisoned entry was detected and counted...
                assert telemetry.counter("remote_cache.corrupt_payloads") == 1
                # ...purged and repaired by the local rebuild's write-through,
                # so a fresh client now gets a genuine hit.
                probe = RemoteBackend(server.host, server.port)
                restored = probe.get(key)
                assert restored is not None
                assert restored.threshold == 0.95
                assert probe.corrupt_payloads == 0
                probe.close()

    def test_foreign_pickle_is_rejected_not_trusted(self, bins):
        # A well-formed pickle of the wrong type must not leak into solves.
        import pickle

        with CacheServerThread() as server:
            key = opq_key(bins, 0.95)
            _store_raw(server, encode_key(key), pickle.dumps(["wrong", "type"]))
            backend = RemoteBackend(server.host, server.port)
            assert backend.get(key) is None
            assert backend.corrupt_payloads == 1
            backend.close()


class TestWireFaults:
    @pytest.mark.parametrize("mode", ["truncate", "garbage", "badsum"])
    def test_broken_reply_frames_fail_open(self, bins, mode):
        expected = baseline_plan_bytes(bins)
        server = _FaultyServer(mode)
        telemetry = Telemetry()
        try:
            with SladeService(
                ServiceConfig(
                    cache_backend=f"remote://127.0.0.1:{server.port}?timeout=0.5"
                ),
                telemetry=telemetry,
            ) as service:
                assert solve_all(service, bins) == expected
            assert server.requests_seen > 0
            assert telemetry.counter("remote_cache.fail_open") > 0
            assert telemetry.counter("remote_cache.corrupt_payloads") == 0
        finally:
            server.close()

    def test_slow_server_past_timeout_fails_open_within_bound(self, bins):
        expected = baseline_plan_bytes(bins)
        server = _FaultyServer("silent")
        telemetry = Telemetry()
        try:
            with SladeService(
                ServiceConfig(
                    cache_backend=f"remote://127.0.0.1:{server.port}?timeout=0.3"
                ),
                telemetry=telemetry,
            ) as service:
                started = time.perf_counter()
                plans = solve_all(service, bins)
                elapsed = time.perf_counter() - started
            assert plans == expected
            assert telemetry.counter("remote_cache.fail_open") > 0
            # The timeout bounds every round trip.  Worst case here is three
            # solves x three round trips (contains/get/put) x 0.3 s = 2.7 s;
            # blocking on the server's 2 s sleep instead would take >= 18 s.
            assert elapsed < 4.5, f"fail-open took {elapsed:.2f}s"
        finally:
            server.close()

    def test_trickling_server_is_bounded_by_the_round_trip_deadline(self, bins):
        # One byte per 0.2 s with a 0.3 s timeout: the per-recv timeout never
        # fires, so only the whole-round-trip deadline prevents a ~26 s
        # stall per GET (a 130-byte frame at 0.2 s/byte).
        expected = baseline_plan_bytes(bins)
        server = _FaultyServer("trickle")
        telemetry = Telemetry()
        try:
            with SladeService(
                ServiceConfig(
                    cache_backend=f"remote://127.0.0.1:{server.port}?timeout=0.3"
                ),
                telemetry=telemetry,
            ) as service:
                started = time.perf_counter()
                plans = solve_all(service, bins)
                elapsed = time.perf_counter() - started
            assert plans == expected
            assert telemetry.counter("remote_cache.fail_open") > 0
            # Same arithmetic as the silent server: every round trip is cut
            # off at ~0.3 s no matter how the bytes dribble in.
            assert elapsed < 4.5, f"trickle fail-open took {elapsed:.2f}s"
        finally:
            server.close()


class TestEquivalenceAcrossBackends:
    def test_remote_and_memory_paths_produce_identical_plans(self, bins):
        expected = baseline_plan_bytes(bins)
        with CacheServerThread() as server:
            for spec in (
                f"remote://{server.host}:{server.port}",
                f"tiered:memory+remote://{server.host}:{server.port}",
            ):
                with SladeService(
                    ServiceConfig(cache_backend=spec)
                ) as service:
                    assert solve_all(service, bins) == expected
                # And again, served purely from the shared cache.
                with SladeService(
                    ServiceConfig(cache_backend=spec)
                ) as warm_service:
                    assert solve_all(warm_service, bins) == expected
                    assert warm_service.cache_stats.misses == 0


#: Distinct fingerprints for the sharded chaos runs: enough keys that every
#: shard in a three-way ring owns some, so a shard death always matters.
_FLEET_THRESHOLDS = (0.90, 0.92, 0.93, 0.95, 0.96, 0.97)


def fleet_problems(bins):
    return [
        SladeProblem.homogeneous(
            40 + 5 * i, threshold, bins, name=f"fleet-{i}"
        )
        for i, threshold in enumerate(_FLEET_THRESHOLDS)
    ]


def solve_fleet(service, bins):
    responses = [
        service.solve(SolveRequest(problem=p)) for p in fleet_problems(bins)
    ]
    assert all(r.ok for r in responses), [
        str(r.error) for r in responses if not r.ok
    ]
    return [plan_bytes(r.plan) for r in responses]


def fleet_baseline(bins):
    with SladeService(ServiceConfig()) as service:
        return solve_fleet(service, bins)


class TestShardedFleetChaos:
    """Kill-a-shard chaos for the consistent-hash ring (replication factor 2)."""

    def _sharded_spec(self, servers, timeout=0.5):
        hosts = ",".join(s.address for s in servers)
        return f"sharded://{hosts}?replicas=2&timeout={timeout}"

    def test_killing_one_of_three_shards_preserves_warmth(self, bins):
        expected = fleet_baseline(bins)
        servers = [CacheServerThread() for _ in range(3)]
        telemetry = Telemetry()
        service = SladeService(
            ServiceConfig(cache_backend=self._sharded_spec(servers)),
            telemetry=telemetry,
        )
        try:
            # Warm the ring: every fingerprint lands on two shards.
            assert solve_fleet(service, bins) == expected
            warm_stats = service.cache_stats
            assert warm_stats.misses == len(_FLEET_THRESHOLDS)

            # Kill one shard mid-run.  Every key kept a replica, so reads
            # fail over with byte-identical plans and zero request errors.
            servers[0].stop()
            assert solve_fleet(service, bins) == expected
            after = service.cache_stats.since(warm_stats)
            assert after.requests == len(_FLEET_THRESHOLDS)
            # The acceptance bar: >= 95% warm after any single shard death
            # (with R=2 every key survives, so this is exactly 100%).
            assert after.hit_rate >= 0.95
            assert after.misses == 0
            # The dead shard's keys were served by fail-over...
            assert telemetry.counter("sharded_cache.hits") >= len(
                _FLEET_THRESHOLDS
            )
            # ...never by the whole-ring fail-open path.
            assert telemetry.counter("sharded_cache.fail_open") == 0
        finally:
            service.close()
            for server in servers:
                server.stop()

    def test_killing_every_shard_fails_open_to_local_rebuilds(self, bins):
        expected = fleet_baseline(bins)
        servers = [CacheServerThread() for _ in range(3)]
        telemetry = Telemetry()
        service = SladeService(
            ServiceConfig(
                cache_backend=self._sharded_spec(servers, timeout=0.3)
            ),
            telemetry=telemetry,
        )
        try:
            assert solve_fleet(service, bins) == expected
            for server in servers:
                server.stop()
            # The whole ring is dark: every read degrades to a local rebuild
            # (a miss), yet every request still succeeds byte-identically.
            assert solve_fleet(service, bins) == expected
            assert telemetry.counter("sharded_cache.fail_open") >= len(
                _FLEET_THRESHOLDS
            )
            assert telemetry.counter("remote_cache.fail_open") > 0
        finally:
            service.close()
            for server in servers:
                server.stop()

    def test_read_failover_repairs_replication(self, bins):
        # After a shard bounce (restart without --persist), reads must both
        # fail over AND write the entry back, so the ring re-converges to
        # full replication without any operator action.
        servers = [CacheServerThread() for _ in range(3)]
        telemetry = Telemetry()
        service = SladeService(
            ServiceConfig(cache_backend=self._sharded_spec(servers)),
            telemetry=telemetry,
        )
        try:
            solve_fleet(service, bins)
            # Empty one shard in place (same address, cold store).
            bounced = servers[1].server
            bounced._entries.clear()
            bounced._bytes_stored = 0
            assert service.cache_stats.misses == len(_FLEET_THRESHOLDS)
            solve_fleet(service, bins)
            assert service.cache_stats.misses == len(_FLEET_THRESHOLDS)
            if bounced.puts:  # the bounced shard owned at least one key
                assert telemetry.counter("sharded_cache.rebalances") > 0
        finally:
            service.close()
            for server in servers:
                server.stop()


class TestPersistentServerRestart:
    """`repro cached --persist` keeps the fleet's warmth across restarts."""

    @staticmethod
    def _spawn_cached(env, persist: Path) -> "tuple[subprocess.Popen, str]":
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "cached", "127.0.0.1:0",
             "--persist", str(persist)],
            env=env, stderr=subprocess.PIPE, text=True,
        )
        banner = proc.stderr.readline().strip()
        assert banner.startswith("cache listening on "), banner
        return proc, banner.rsplit(" ", 1)[1]

    @staticmethod
    def _terminate(proc: subprocess.Popen) -> None:
        proc.send_signal(signal.SIGTERM)
        _, err = proc.communicate(timeout=20)
        assert proc.returncode == 0, err

    def test_restarted_persist_server_serves_full_warm_hit_rate(
        self, bins, tmp_path
    ):
        env = dict(os.environ)
        src_root = Path(__file__).resolve().parents[2] / "src"
        env["PYTHONPATH"] = f"{src_root}{os.pathsep}{env.get('PYTHONPATH', '')}"
        persist = tmp_path / "fleet-warmth.db"

        first_proc, address = self._spawn_cached(env, persist)
        try:
            with SladeService(
                ServiceConfig(cache_backend=f"remote://{address}")
            ) as service:
                first_plans = solve_fleet(service, bins)
                assert service.cache_stats.misses == len(_FLEET_THRESHOLDS)
            self._terminate(first_proc)
            assert persist.exists()

            # Same persistence file, fresh process, fresh port: the warmth
            # must come back from disk.
            second_proc, address = self._spawn_cached(env, persist)
            try:
                probe = RemoteBackend(*_split(address))
                stats = probe.server_stats()
                probe.close()
                assert stats["restored_keys"] == len(_FLEET_THRESHOLDS)

                with SladeService(
                    ServiceConfig(cache_backend=f"remote://{address}")
                ) as warm_service:
                    assert solve_fleet(warm_service, bins) == first_plans
                    warm = warm_service.cache_stats
                    # 100% warm: every request a hit, zero cold builds.
                    assert warm.misses == 0
                    assert warm.hit_rate == 1.0
            finally:
                if second_proc.poll() is None:
                    self._terminate(second_proc)
        finally:
            if first_proc.poll() is None:
                first_proc.kill()
                first_proc.communicate()


def _split(address: str) -> "tuple[str, int]":
    host, _, port = address.rpartition(":")
    return host, int(port)


def _claim_dead_port() -> int:
    """A port with nothing listening (bound then released)."""
    with socket.create_server(("127.0.0.1", 0)) as probe:
        return probe.getsockname()[1]


def _store_raw(server: CacheServerThread, key: bytes, payload: bytes) -> None:
    """PUT arbitrary bytes straight onto the server (bypassing the client)."""
    with socket.create_connection((server.host, server.port), timeout=5) as sock:
        sock.settimeout(5)
        sock.sendall(encode_frame(OP_PUT, key, payload))
        reply = read_frame_from_socket(sock)
        assert reply.op != REPLY_MISS
        sock.sendall(encode_frame(OP_CONTAINS, key))
        assert read_frame_from_socket(sock).op != REPLY_MISS
