"""Tests for the networked plan-cache backend and the tiered store.

Covers the storage contract of :class:`RemoteBackend` against a real
in-process :class:`CacheServer`, the promote/write-through semantics of
:class:`TieredBackend`, spec parsing for ``remote://`` and ``tiered:`` in
:func:`open_backend`, and — extending PR 2's SQLite warm-start regression to
the networked path — a second *process* reaching a 100% hit rate through one
shared ``repro cached`` server.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.algorithms.opq import build_optimal_priority_queue
from repro.core.bins import TaskBinSet
from repro.engine.backends import (
    BackendSpecError,
    CacheBackend,
    MemoryBackend,
    RemoteBackend,
    SQLiteBackend,
    TieredBackend,
    open_backend,
)
from repro.engine.backends.server import CacheServerThread
from repro.engine.cache import PlanCache
from repro.engine.fingerprint import opq_key
from repro.engine.telemetry import Telemetry

TRIPLES = [(1, 0.9, 0.10), (2, 0.85, 0.18), (3, 0.8, 0.24)]


@pytest.fixture
def bins():
    return TaskBinSet.from_triples(TRIPLES, name="table1")


@pytest.fixture
def server():
    with CacheServerThread() as handle:
        yield handle


def build(bins, threshold):
    return build_optimal_priority_queue(bins, threshold)


def remote_for(server, **kwargs) -> RemoteBackend:
    return RemoteBackend(server.host, server.port, **kwargs)


class TestRemoteBackend:
    def test_round_trip_through_the_server(self, bins, server):
        backend = remote_for(server)
        key = opq_key(bins, 0.95)
        queue = build(bins, 0.95)
        assert backend.get(key) is None
        backend.put(key, queue)
        restored = backend.get(key)
        assert restored.threshold == 0.95
        assert [(c.counts, c.lcm) for c in restored] == [
            (c.counts, c.lcm) for c in queue
        ]
        assert key in backend
        assert len(backend) == 1
        backend.close()

    def test_every_get_is_shared_storage_not_memoisation(self, bins, server):
        # The remote tier deliberately does not memoise: in-process warmth is
        # the tiered backend's job.  Two hits return equal but distinct
        # objects, each unpickled from the wire.
        backend = remote_for(server)
        key = opq_key(bins, 0.9)
        backend.put(key, build(bins, 0.9))
        first, second = backend.get(key), backend.get(key)
        assert first is not second
        assert [(c.counts, c.lcm) for c in first] == [
            (c.counts, c.lcm) for c in second
        ]
        backend.close()

    def test_merge_and_clear(self, bins, server):
        backend = remote_for(server)
        entries = {
            opq_key(bins, t): build(bins, t) for t in (0.9, 0.95)
        }
        backend.merge(entries)
        assert len(backend) == 2
        backend.clear()
        assert len(backend) == 0
        backend.close()

    def test_snapshot_is_empty_by_design(self, bins, server):
        backend = remote_for(server)
        backend.put(opq_key(bins, 0.9), build(bins, 0.9))
        # Workers in a process pool reach the server themselves; nothing is
        # exported through pickled snapshots.
        assert backend.snapshot() == {}
        backend.close()

    def test_satisfies_protocol_and_is_persistent(self, server):
        backend = remote_for(server)
        assert isinstance(backend, CacheBackend)
        assert backend.persistent
        backend.close()

    def test_server_side_lru_bound(self, bins):
        with CacheServerThread(max_entries=2) as bounded:
            backend = RemoteBackend(bounded.host, bounded.port)
            keys = [opq_key(bins, t) for t in (0.90, 0.95, 0.97)]
            backend.put(keys[0], build(bins, 0.90))
            backend.put(keys[1], build(bins, 0.95))
            assert backend.get(keys[0]) is not None   # refresh 0.90
            backend.put(keys[2], build(bins, 0.97))   # evicts 0.95
            assert keys[0] in backend
            assert keys[2] in backend
            assert keys[1] not in backend
            stats = backend.server_stats()
            assert stats["evictions"] == 1
            backend.close()

    def test_ping_stats_and_extra_metrics(self, bins, server):
        backend = remote_for(server)
        assert backend.ping()
        backend.put(opq_key(bins, 0.9), build(bins, 0.9))
        stats = backend.server_stats()
        assert stats["keys"] == 1
        assert stats["bytes"] > 0
        metrics = backend.extra_metrics()
        assert metrics["remote_cache.server_keys"] == 1.0
        assert metrics["remote_cache.server_bytes"] > 0
        backend.close()

    def test_telemetry_counts_hits_misses_and_latency(self, bins, server):
        telemetry = Telemetry()
        backend = remote_for(server, telemetry=telemetry)
        key = opq_key(bins, 0.9)
        backend.get(key)
        backend.put(key, build(bins, 0.9))
        backend.get(key)
        assert telemetry.counter("remote_cache.misses") == 1
        assert telemetry.counter("remote_cache.hits") == 1
        rtt = telemetry.series("remote_cache.round_trip_seconds")
        assert rtt.count >= 3  # miss + put + hit at minimum
        assert rtt.bucket_bounds is not None
        backend.close()

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            RemoteBackend("h", 1, timeout=0)
        with pytest.raises(ValueError):
            RemoteBackend("h", 1, pool_size=0)

    def test_pool_reuses_connections(self, bins, server):
        backend = remote_for(server)
        for threshold in (0.9, 0.95, 0.9, 0.95):
            backend.put(opq_key(bins, threshold), build(bins, threshold))
            backend.get(opq_key(bins, threshold))
        # Nine round trips over one pooled connection, not nine connections.
        assert backend.server_stats()["connections"] <= 2
        backend.close()


class TestTieredBackend:
    def test_promote_on_remote_hit_then_serve_locally(self, bins, server):
        far = remote_for(server)
        key = opq_key(bins, 0.95)
        far.put(key, build(bins, 0.95))

        tiered = TieredBackend(MemoryBackend(), remote_for(server))
        first = tiered.get(key)
        assert first is not None
        assert (tiered.local_hits, tiered.remote_hits, tiered.misses) == (0, 1, 0)
        # Promotion makes the next hit in-process and by-reference.
        second = tiered.get(key)
        assert second is first
        assert tiered.local_hits == 1
        far.close()
        tiered.close()

    def test_write_through_reaches_both_tiers(self, bins, server):
        tiered = TieredBackend(MemoryBackend(), remote_for(server))
        key = opq_key(bins, 0.9)
        tiered.put(key, build(bins, 0.9))
        assert key in tiered.local
        probe = remote_for(server)
        assert key in probe
        probe.close()
        tiered.close()

    def test_miss_counts_and_contains(self, bins, server):
        tiered = TieredBackend(MemoryBackend(), remote_for(server))
        key = opq_key(bins, 0.97)
        assert tiered.get(key) is None
        assert tiered.misses == 1
        assert key not in tiered
        tiered.put(key, build(bins, 0.97))
        assert key in tiered
        tiered.close()

    def test_telemetry_propagates_to_far_tier(self, bins, server):
        telemetry = Telemetry()
        tiered = TieredBackend(MemoryBackend(), remote_for(server))
        cache = PlanCache(backend=tiered, telemetry=telemetry)
        cache.queue_for(bins, 0.9)   # miss -> build -> write-through
        cache.queue_for(bins, 0.9)   # local hit
        assert telemetry.counter("tiered.misses") == 1
        assert telemetry.counter("tiered.local_hits") == 1
        # The far tier adopted the same registry through the setter chain.
        assert tiered.remote.telemetry is telemetry
        assert telemetry.counter("cache.hits") == 1
        cache.close()

    def test_snapshot_merges_tiers_with_local_winning(self, bins, server):
        far = remote_for(server)
        far_key = opq_key(bins, 0.95)
        far.put(far_key, build(bins, 0.95))
        tiered = TieredBackend(MemoryBackend(), remote_for(server))
        local_key = opq_key(bins, 0.9)
        local_queue = build(bins, 0.9)
        tiered.local.put(local_key, local_queue)
        snapshot = tiered.snapshot()
        # The far tier exports nothing (remote snapshots are empty), the
        # near tier exports its residents by reference.
        assert snapshot == {local_key: local_queue}
        far.close()
        tiered.close()

    def test_sqlite_far_tier(self, bins, tmp_path):
        tiered = TieredBackend(
            MemoryBackend(max_entries=4), SQLiteBackend(tmp_path / "plans.db")
        )
        key = opq_key(bins, 0.9)
        tiered.put(key, build(bins, 0.9))
        assert tiered.persistent
        assert len(tiered) == 1
        tiered.local.clear()
        assert tiered.get(key) is not None   # far tier repopulates the near
        assert tiered.remote_hits == 1
        tiered.close()


class TestOpenBackendSpecs:
    def test_remote_spec(self, server):
        backend = open_backend(f"remote://{server.host}:{server.port}")
        assert isinstance(backend, RemoteBackend)
        assert backend.ping()
        backend.close()

    def test_remote_spec_options(self, server):
        backend = open_backend(
            f"remote://{server.host}:{server.port}?timeout=0.25&pool=4"
        )
        assert backend.timeout == 0.25
        assert backend._pool._size == 4
        backend.close()

    def test_tiered_spec(self, server):
        backend = open_backend(
            f"tiered:memory:16+remote://{server.host}:{server.port}"
        )
        assert isinstance(backend, TieredBackend)
        assert isinstance(backend.local, MemoryBackend)
        assert backend.local.max_entries == 16
        assert isinstance(backend.remote, RemoteBackend)
        backend.close()

    def test_tiered_sqlite_spec(self, tmp_path):
        backend = open_backend(f"tiered:memory+sqlite:{tmp_path / 'p.db'}")
        assert isinstance(backend.remote, SQLiteBackend)
        backend.close()

    def test_max_entries_bounds_the_near_tier(self, server):
        backend = open_backend(
            f"tiered:memory+remote://{server.host}:{server.port}",
            max_entries=8,
        )
        assert backend.local.max_entries == 8
        backend.close()

    @pytest.mark.parametrize("spec", [
        "remote://",                      # no host/port
        "remote://hostonly",              # no port
        "remote://h:99999",               # invalid port
        "remote://h:1?timeout=soon",      # bad option value
        "remote://h:1?bogus=1",           # unknown option
        "tiered:memory",                  # missing far tier
        "tiered:+remote://h:1",           # empty near tier
        "tiered:sqlite:x.db+remote://h:1",  # near tier must be memory
        "tiered:memory+memory",           # far tier must be shared storage
        "tiered:memory+tiered:memory+memory",  # no nesting
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(BackendSpecError):
            open_backend(spec)

    def test_rejected_near_tier_spec_creates_no_side_effects(self, tmp_path):
        # The near-tier validation must run before construction: a sqlite
        # near spec used to create the database file just to be rejected.
        near_db = tmp_path / "near.db"
        with pytest.raises(BackendSpecError, match="near tier"):
            open_backend(f"tiered:sqlite:{near_db}+remote://h:1")
        assert not near_db.exists()

    def test_telemetry_forwarded_to_remote(self, server):
        telemetry = Telemetry()
        backend = open_backend(
            f"remote://{server.host}:{server.port}", telemetry=telemetry
        )
        assert backend.telemetry is telemetry
        backend.close()


class TestPlanCacheOverRemote:
    def test_hits_and_misses_counted_once_per_key(self, bins, server):
        cache = PlanCache(backend=remote_for(server))
        cache.queue_for(bins, 0.95)
        cache.queue_for(bins, 0.95)
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)
        assert cache.persistent
        cache.close()

    def test_second_cache_against_same_server_starts_warm(self, bins, server):
        first = PlanCache(backend=remote_for(server))
        first.queue_for(bins, 0.95)
        first.close()

        second = PlanCache(backend=remote_for(server))
        second.queue_for(bins, 0.95)
        stats = second.stats
        assert (stats.hits, stats.misses) == (1, 0)
        assert stats.hit_rate == 1.0
        second.close()

    def test_backend_metrics_exposed_through_the_cache(self, bins, server):
        cache = PlanCache(backend=remote_for(server))
        cache.queue_for(bins, 0.9)
        metrics = cache.backend_metrics()
        assert metrics["remote_cache.server_keys"] == 1.0
        cache.close()

    def test_memory_cache_has_no_backend_metrics(self):
        assert PlanCache().backend_metrics() == {}


#: Second fleet member: a genuinely fresh interpreter sharing the server.
_SECOND_PROCESS_SCRIPT = """
import json, sys
from repro.core.problem import SladeProblem
from repro.core.bins import TaskBinSet
from repro.io.serialization import plan_to_dict
from repro.service import ServiceConfig, SladeService, SolveRequest

address, requests = sys.argv[1], int(sys.argv[2])
bins = TaskBinSet.from_triples(
    [(1, 0.9, 0.10), (2, 0.85, 0.18), (3, 0.8, 0.24)], name="table1"
)
service = SladeService(ServiceConfig(cache_backend=f"remote://{address}"))
responses = [
    service.solve(
        SolveRequest(problem=SladeProblem.homogeneous(50 + 10 * i, 0.95, bins))
    )
    for i in range(requests)
]
stats = service.cache_stats
service.close()
print(json.dumps({
    "ok": all(r.ok for r in responses),
    "caches": [r.cache for r in responses],
    "hits": stats.hits,
    "misses": stats.misses,
    "plans": [json.dumps(plan_to_dict(r.plan), sort_keys=True) for r in responses],
}))
"""


class TestFleetWarmStart:
    """The networked extension of PR 2's SQLite warm-start regression."""

    def test_second_process_reaches_full_hit_rate(self, bins, tmp_path):
        requests = 4
        env = dict(os.environ)
        src_root = Path(__file__).resolve().parents[2] / "src"
        env["PYTHONPATH"] = f"{src_root}{os.pathsep}{env.get('PYTHONPATH', '')}"

        cached = subprocess.Popen(
            [sys.executable, "-m", "repro", "cached", "127.0.0.1:0"],
            env=env, stderr=subprocess.PIPE, text=True,
        )
        try:
            banner = cached.stderr.readline().strip()
            assert banner.startswith("cache listening on "), banner
            address = banner.rsplit(" ", 1)[1]

            from repro.core.problem import SladeProblem
            from repro.io.serialization import plan_to_dict
            from repro.service import ServiceConfig, SladeService, SolveRequest

            # First fleet member (this process): one cold build, write-through.
            with SladeService(
                ServiceConfig(cache_backend=f"remote://{address}")
            ) as service:
                first = [
                    service.solve(SolveRequest(
                        problem=SladeProblem.homogeneous(50 + 10 * i, 0.95, bins)
                    ))
                    for i in range(requests)
                ]
                assert all(r.ok for r in first)
                assert service.cache_stats.misses == 1

            # Second fleet member: a fresh interpreter, same server.
            proc = subprocess.run(
                [sys.executable, "-c", _SECOND_PROCESS_SCRIPT,
                 address, str(requests)],
                env=env, capture_output=True, text=True, check=True,
            )
            second = json.loads(proc.stdout.strip().splitlines()[-1])
            assert second["ok"]
            # 100% hit rate: every request served from the shared cache.
            assert second["hits"] == requests
            assert second["misses"] == 0
            assert all(cache == "hit" for cache in second["caches"])
            # Byte-identical plans across the fleet.
            expected = [
                json.dumps(plan_to_dict(r.plan), sort_keys=True) for r in first
            ]
            assert second["plans"] == expected

            cached.send_signal(signal.SIGTERM)
            _, err = cached.communicate(timeout=20)
            assert cached.returncode == 0, err
        finally:
            if cached.poll() is None:
                cached.kill()
                cached.communicate()


class TestDeleteOverTheWire:
    def test_remote_delete_true_only_when_present(self, bins, server):
        backend = remote_for(server)
        key = opq_key(bins, 0.95)
        assert backend.delete(key) is False
        backend.put(key, build(bins, 0.95))
        assert backend.delete(key) is True
        assert backend.get(key) is None
        assert backend.delete(key) is False

    def test_remote_delete_fails_open_when_unreachable(self, bins, server):
        backend = remote_for(server)
        key = opq_key(bins, 0.95)
        backend.put(key, build(bins, 0.95))
        server.stop()
        assert backend.delete(key) is False

    def test_tiered_delete_purges_both_tiers(self, bins, server):
        backend = TieredBackend(MemoryBackend(), remote_for(server))
        key = opq_key(bins, 0.95)
        backend.put(key, build(bins, 0.95))   # write-through: both tiers hold it
        assert key in backend.local
        assert backend.delete(key) is True
        assert key not in backend.local
        assert backend.remote.get(key) is None
        assert backend.get(key) is None

    def test_tiered_delete_reports_near_only_removal(self, bins, server):
        backend = TieredBackend(MemoryBackend(), remote_for(server))
        key = opq_key(bins, 0.95)
        backend.local.put(key, build(bins, 0.95))
        assert backend.delete(key) is True
        assert backend.get(key) is None
