"""Property tests for the cache server's wire protocol.

The frame codec is the trust boundary between fleet hosts: anything that
round-trips must come back bit-identical, and anything malformed — bad magic,
foreign versions, lying length fields, flipped payload bits — must be
rejected as :class:`WireProtocolError` before a byte of it is believed.  The
live-server fuzz tests additionally pin the operational contract: garbage on
a connection kills *that connection* at most, never the server.
"""

import socket
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.opq import build_optimal_priority_queue
from repro.core.bins import TaskBinSet
from repro.engine.backends.server import CacheServerThread
from repro.engine.backends.wire import (
    HEADER,
    MAGIC,
    MAX_KEY_BYTES,
    MAX_PAYLOAD_BYTES,
    OP_GET,
    OP_PING,
    OP_PUT,
    REPLY_OK,
    REPLY_PONG,
    REPLY_VALUE,
    WIRE_VERSION,
    Frame,
    WirePayloadError,
    WireProtocolError,
    decode_frame,
    decode_key,
    decode_queue,
    encode_frame,
    encode_key,
    encode_queue,
    read_frame_from_socket,
)

REQUEST_OPS = (0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07)
REPLY_OPS = (0x81, 0x82, 0x83, 0x84, 0x85, 0x86)

ops = st.sampled_from(REQUEST_OPS + REPLY_OPS)
keys = st.binary(max_size=256)
payloads = st.binary(max_size=4096)


class TestFrameRoundTrip:
    @given(op=ops, key=keys, payload=payloads)
    def test_encode_decode_is_identity(self, op, key, payload):
        frame = decode_frame(encode_frame(op, key, payload))
        assert frame == Frame(op=op, key=key, payload=payload)

    @given(key=keys, payload=payloads)
    def test_header_lengths_match_body(self, key, payload):
        data = encode_frame(OP_PUT, key, payload)
        assert len(data) == HEADER.size + len(key) + len(payload)

    def test_oversized_key_rejected_before_the_wire(self):
        with pytest.raises(WireProtocolError):
            encode_frame(OP_GET, b"k" * (MAX_KEY_BYTES + 1))

    def test_unknown_opcode_rejected_on_encode(self):
        with pytest.raises(WireProtocolError):
            encode_frame(0x42)


class TestFrameRejection:
    @given(key=keys, payload=st.binary(min_size=1, max_size=1024),
           flip=st.integers(min_value=0))
    def test_any_flipped_body_byte_fails_the_checksum(self, key, payload, flip):
        data = bytearray(encode_frame(OP_PUT, key, payload))
        index = HEADER.size + (flip % (len(key) + len(payload)))
        data[index] ^= 0x01
        with pytest.raises(WireProtocolError):
            decode_frame(bytes(data))

    def test_bad_magic_rejected(self):
        data = bytearray(encode_frame(OP_PING))
        data[0:2] = b"XX"
        with pytest.raises(WireProtocolError, match="magic"):
            decode_frame(bytes(data))

    def test_foreign_version_rejected(self):
        data = bytearray(encode_frame(OP_PING))
        data[2] = WIRE_VERSION + 1
        with pytest.raises(WireProtocolError, match="version"):
            decode_frame(bytes(data))

    def test_unknown_opcode_rejected(self):
        data = bytearray(encode_frame(OP_PING))
        data[3] = 0x7F
        with pytest.raises(WireProtocolError, match="opcode"):
            decode_frame(bytes(data))

    def test_truncated_header_rejected(self):
        with pytest.raises(WireProtocolError, match="truncated"):
            decode_frame(encode_frame(OP_PING)[: HEADER.size - 1])

    def test_lying_length_field_rejected_without_allocation(self):
        # A corrupted header promising a 4 GiB payload must fail on the
        # length check, not by trying to read 4 GiB.
        header = HEADER.pack(MAGIC, WIRE_VERSION, OP_GET, 0,
                             MAX_PAYLOAD_BYTES + 1, 0)
        with pytest.raises(WireProtocolError, match="payload length"):
            decode_frame(header)

    def test_short_body_rejected(self):
        data = encode_frame(OP_PUT, b"key", b"payload")
        with pytest.raises(WireProtocolError):
            decode_frame(data[:-3])


# Fingerprints and float tokens are newline-free by construction.
key_parts = st.text(
    alphabet=st.characters(blacklist_characters="\n", blacklist_categories=("Cs",)),
    max_size=64,
)


class TestKeyCodec:
    @given(fingerprint=key_parts, token=key_parts)
    def test_round_trip(self, fingerprint, token):
        assert decode_key(encode_key((fingerprint, token))) == (fingerprint, token)

    def test_separatorless_key_rejected(self):
        with pytest.raises(WireProtocolError):
            decode_key(b"no-separator-here")


class TestQueuePayloadCodec:
    def test_round_trip_preserves_queue_content(self):
        bins = TaskBinSet.from_triples(
            [(1, 0.9, 0.10), (2, 0.85, 0.18), (3, 0.8, 0.24)], name="t"
        )
        queue = build_optimal_priority_queue(bins, 0.95)
        restored = decode_queue(encode_queue(queue))
        assert restored.threshold == queue.threshold
        assert [(c.counts, c.lcm) for c in restored] == [
            (c.counts, c.lcm) for c in queue
        ]

    @given(garbage=st.binary(max_size=256))
    def test_garbage_payloads_rejected(self, garbage):
        try:
            decode_queue(garbage)
        except WirePayloadError:
            pass
        else:  # pragma: no cover - would mean pickle accepted garbage
            pytest.fail("garbage bytes decoded into a queue")

    def test_foreign_pickles_rejected(self):
        import pickle

        with pytest.raises(WirePayloadError, match="not OptimalPriorityQueue"):
            decode_queue(pickle.dumps({"not": "a queue"}))


@pytest.fixture(scope="module")
def live_server():
    with CacheServerThread() as server:
        yield server


def _ping_works(server: CacheServerThread) -> bool:
    with socket.create_connection((server.host, server.port), timeout=5) as sock:
        sock.settimeout(5)
        sock.sendall(encode_frame(OP_PING))
        return read_frame_from_socket(sock).op == REPLY_PONG


class TestServerRobustness:
    """Garbage on the wire never crashes the serving loop."""

    @settings(max_examples=20, deadline=None)
    @given(garbage=st.binary(min_size=1, max_size=128))
    def test_fuzzed_bytes_leave_the_server_alive(self, live_server, garbage):
        with socket.create_connection(
            (live_server.host, live_server.port), timeout=5
        ) as sock:
            sock.settimeout(5)
            sock.sendall(garbage)
            sock.shutdown(socket.SHUT_WR)
            # The server answers an ERROR frame or just closes; either way it
            # must not hang and must keep serving other connections.
            try:
                read_frame_from_socket(sock)
            except (WireProtocolError, OSError):
                pass
        assert _ping_works(live_server)

    def test_bad_checksum_request_answers_error_and_closes(self, live_server):
        data = bytearray(encode_frame(OP_PUT, b"key", b"value"))
        data[-1] ^= 0xFF
        with socket.create_connection(
            (live_server.host, live_server.port), timeout=5
        ) as sock:
            sock.settimeout(5)
            sock.sendall(bytes(data))
            reply = read_frame_from_socket(sock)
            assert reply.op == 0x86  # REPLY_ERROR
            assert b"checksum" in reply.payload
        assert _ping_works(live_server)

    def test_reply_opcode_sent_as_request_is_refused(self, live_server):
        with socket.create_connection(
            (live_server.host, live_server.port), timeout=5
        ) as sock:
            sock.settimeout(5)
            sock.sendall(encode_frame(REPLY_OK))
            reply = read_frame_from_socket(sock)
            assert reply.op == 0x86
            assert b"not a request" in reply.payload
        assert _ping_works(live_server)

    def test_valid_traffic_still_served_after_fuzzing(self, live_server):
        with socket.create_connection(
            (live_server.host, live_server.port), timeout=5
        ) as sock:
            sock.settimeout(5)
            sock.sendall(encode_frame(OP_PUT, b"alive", b"yes"))
            assert read_frame_from_socket(sock).op == REPLY_OK
            sock.sendall(encode_frame(OP_GET, b"alive"))
            reply = read_frame_from_socket(sock)
            assert reply.op == REPLY_VALUE
            assert reply.payload == b"yes"


class TestHeaderLayout:
    def test_header_is_sixteen_bytes(self):
        # The layout is a wire contract: changing it requires a VERSION bump,
        # and this test is the tripwire.
        assert HEADER.size == 16
        assert HEADER.format == "!2sBBIII"
        assert struct.calcsize(HEADER.format) == 16
