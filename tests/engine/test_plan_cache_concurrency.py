"""Concurrency tests for the plan cache's per-key locking and coalescing.

Two contracts from the sharded-fleet PR:

* **Coalescing** — many threads missing on the *same* fingerprint issue
  exactly one backend GET and one Algorithm 2 build; the followers wait on
  the in-flight entry and share the leader's queue object (counted as hits
  plus ``cache.coalesced_waits``).
* **Per-key parallelism** — threads on *distinct* fingerprints never
  serialise behind one another's storage round trips.  With a backend whose
  ``get``/``put`` simulate network latency, total wall time stays near one
  round trip, not the sum — the regression that motivated replacing the old
  global hot-path lock.
"""

import threading
import time

import pytest

from repro.core.bins import TaskBinSet
from repro.engine.backends import MemoryBackend
from repro.engine.cache import PlanCache
from repro.engine.telemetry import Telemetry

TRIPLES = [(1, 0.9, 0.10), (2, 0.85, 0.18), (3, 0.8, 0.24)]


@pytest.fixture
def bins():
    return TaskBinSet.from_triples(TRIPLES, name="table1")


class CountingBackend:
    """A MemoryBackend wrapper that counts and optionally delays traffic.

    ``latency`` sleeps inside get/put to model a remote round trip;
    ``concurrent_safe`` mirrors the networked backends so the cache lets
    per-key leaders overlap.
    """

    persistent = False
    concurrent_safe = True

    def __init__(self, latency: float = 0.0) -> None:
        self._inner = MemoryBackend()
        self._latency = latency
        self._lock = threading.Lock()
        self.gets = 0
        self.puts = 0
        self.concurrent_calls = 0
        self._active = 0

    def _enter(self):
        with self._lock:
            self._active += 1
            self.concurrent_calls = max(self.concurrent_calls, self._active)
        if self._latency:
            time.sleep(self._latency)

    def _exit(self):
        with self._lock:
            self._active -= 1

    def get(self, key):
        self._enter()
        try:
            with self._lock:
                self.gets += 1
            return self._inner.get(key)
        finally:
            self._exit()

    def put(self, key, queue):
        self._enter()
        try:
            with self._lock:
                self.puts += 1
            self._inner.put(key, queue)
        finally:
            self._exit()

    def merge(self, entries):
        self._inner.merge(entries)

    def snapshot(self):
        return self._inner.snapshot()

    def clear(self):
        self._inner.clear()

    def close(self):
        self._inner.close()

    def __len__(self):
        return len(self._inner)

    def __contains__(self, key):
        return key in self._inner


def run_threads(workers):
    threads = [threading.Thread(target=worker) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestCoalescing:
    def test_thundering_herd_issues_one_get_and_one_build(self, bins):
        backend = CountingBackend(latency=0.05)
        telemetry = Telemetry()
        cache = PlanCache(backend=backend, telemetry=telemetry)
        herd = 12
        barrier = threading.Barrier(herd)
        queues = []

        def request():
            barrier.wait()
            queues.append(cache.queue_for(bins, 0.97))

        run_threads([request] * herd)

        # Exactly one storage lookup and one write-through for the herd...
        assert backend.gets == 1
        assert backend.puts == 1
        # ...and exactly one build, with every follower counted as a
        # coalesced hit sharing the same object.
        assert telemetry.counter("cache.misses") == 1
        assert telemetry.counter("cache.hits") == herd - 1
        assert telemetry.counter("cache.coalesced_waits") == herd - 1
        stats = cache.stats
        assert (stats.hits, stats.misses) == (herd - 1, 1)
        assert all(queue is queues[0] for queue in queues)

    def test_coalesced_requests_resolve_after_leader_failure(self, bins):
        class ExplodingBackend(CountingBackend):
            def __init__(self):
                super().__init__()
                self.failures_left = 1

            def put(self, key, queue):
                with self._lock:
                    if self.failures_left:
                        self.failures_left -= 1
                        raise OSError("disk full")
                super().put(key, queue)

        backend = ExplodingBackend()
        cache = PlanCache(backend=backend)
        herd = 4
        barrier = threading.Barrier(herd)
        outcomes = []

        def request():
            barrier.wait()
            try:
                outcomes.append(cache.queue_for(bins, 0.95))
            except OSError:
                outcomes.append(None)

        run_threads([request] * herd)
        # The leader's failure surfaces only on the leader; every follower
        # retried as a fresh leader and got a real queue.
        assert outcomes.count(None) == 1
        survivors = [queue for queue in outcomes if queue is not None]
        assert len(survivors) == herd - 1


class TestPerKeyParallelism:
    def test_distinct_fingerprints_overlap_storage_round_trips(self, bins):
        latency = 0.15
        backend = CountingBackend(latency=latency)
        cache = PlanCache(backend=backend)
        thresholds = (0.90, 0.93, 0.95, 0.97)
        barrier = threading.Barrier(len(thresholds))

        def request(threshold):
            barrier.wait()
            cache.queue_for(bins, threshold)

        started = time.perf_counter()
        run_threads([
            (lambda t=t: request(t)) for t in thresholds
        ])
        elapsed = time.perf_counter() - started

        # Serial execution would pay 4 keys x (get + put) x latency = 1.2 s.
        # Overlapped leaders pay ~one get + one put plus build time.
        assert elapsed < 2.5 * 2 * latency, (
            f"distinct keys serialised: {elapsed:.2f}s for 4 keys at "
            f"{latency}s per storage call"
        )
        # The backend really saw overlapping calls (the old global lock
        # admitted exactly one at a time).
        assert backend.concurrent_calls >= 2
        assert cache.stats.misses == len(thresholds)

    def test_unsafe_backends_keep_the_storage_lock(self, bins):
        # A backend that does not declare concurrent_safe must never see
        # overlapping storage calls, whatever the thread count.
        backend = CountingBackend(latency=0.02)
        backend.concurrent_safe = False
        cache = PlanCache(backend=backend)
        thresholds = (0.90, 0.93, 0.95, 0.97)
        barrier = threading.Barrier(len(thresholds))

        def request(threshold):
            barrier.wait()
            cache.queue_for(bins, threshold)

        run_threads([(lambda t=t: request(t)) for t in thresholds])
        assert backend.concurrent_calls == 1
        assert cache.stats.misses == len(thresholds)


class TestInvalidateUnderConcurrency:
    def test_invalidate_races_concurrent_builds_without_resurrection(self, bins):
        """Builders racing an invalidation never re-seed from deleted donors.

        The cache drops the menu's plan-curve index before issuing backend
        deletes, so a concurrent ``seed_for`` either reads the donor while
        it still exists (fine: the donor epoch was still live) or finds no
        curve at all — it must never observe a curve point whose entry is
        already gone and silently fall back mid-iteration to a stale donor.
        """
        backend = CountingBackend(latency=0.005)
        backend._inner = MemoryBackend()  # ensure delete support below

        def delete(key):
            return backend._inner.delete(key)

        backend.delete = delete
        cache = PlanCache(backend=backend)
        for threshold in (0.90, 0.95):
            cache.queue_for(bins, threshold)

        stop = threading.Event()
        errors = []

        def builder():
            thresholds = (0.91, 0.93, 0.96, 0.97)
            index = 0
            while not stop.is_set():
                try:
                    cache.queue_for(bins, thresholds[index % len(thresholds)])
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)
                    return
                index += 1

        threads = [threading.Thread(target=builder) for _ in range(4)]
        for thread in threads:
            thread.start()
        for _ in range(10):
            cache.invalidate(bins, thresholds=(0.90, 0.91, 0.93, 0.95, 0.96, 0.97))
            time.sleep(0.002)
        stop.set()
        for thread in threads:
            thread.join()

        assert not errors
        # After the last invalidation wave, a rebuild works from scratch.
        queue = cache.queue_for(bins, 0.97)
        assert queue is not None
