"""Hypothesis property tests for the consistent-hash ring.

Two properties make :class:`~repro.engine.backends.sharded.HashRing` fit for
a cache fleet, and both are pinned here across endpoint counts and vnode
settings:

* **balance** — distinct keys spread across shards within a constant factor
  of the ideal ``1/N`` share (the SHA-256 ring points are uniform, so the
  largest shard's share concentrates around ideal as vnodes grow);
* **minimal disruption** — removing one endpoint remaps *only* the keys that
  endpoint owned (~1/N of the keyspace); every other key keeps its primary.
  A naive ``hash(key) % N`` placement remaps ~(N-1)/N of all keys instead,
  which is exactly the cold-fleet stampede consistent hashing exists to
  avoid.

The layout must also be a pure function of the endpoint set — independent of
insertion order — so every client in a fleet computes identical placements.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.backends import HashRing

#: Endpoint labels shaped like real shard addresses.
_ENDPOINT_COUNTS = st.integers(min_value=2, max_value=6)
_VNODES = st.sampled_from([64, 128])
#: A per-example key-space prefix: uniformity must not depend on key shape.
_PREFIXES = st.text(
    alphabet=st.characters(codec="ascii", categories=("L", "N", "P")),
    min_size=0,
    max_size=12,
)

#: Keys per example.  Large enough that binomial noise stays far inside the
#: asserted factor-of-ideal bounds (empirically the worst max/min shares over
#: hundreds of configurations are ~1.5x / ~0.6x ideal).
_KEYS = 600


def _labels(count: int) -> list:
    return [f"10.0.0.{index}:9009" for index in range(count)]


def _keys(prefix: str) -> list:
    return [f"{prefix}/key-{index}".encode("utf-8") for index in range(_KEYS)]


class TestBalance:
    @given(count=_ENDPOINT_COUNTS, vnodes=_VNODES, prefix=_PREFIXES)
    @settings(max_examples=30, deadline=None)
    def test_keys_distribute_within_balance_bound(self, count, vnodes, prefix):
        labels = _labels(count)
        ring = HashRing(labels, vnodes=vnodes)
        loads = {label: 0 for label in labels}
        for key in _keys(prefix):
            loads[ring.primary(key)] += 1
        ideal = _KEYS / count
        assert max(loads.values()) <= 2.0 * ideal, loads
        assert min(loads.values()) >= 0.25 * ideal, loads

    @given(count=_ENDPOINT_COUNTS, vnodes=_VNODES)
    @settings(max_examples=15, deadline=None)
    def test_layout_is_insertion_order_independent(self, count, vnodes):
        labels = _labels(count)
        forward = HashRing(labels, vnodes=vnodes)
        backward = HashRing(reversed(labels), vnodes=vnodes)
        for key in _keys("order")[:100]:
            assert forward.successors(key, count) == backward.successors(key, count)


class TestMinimalDisruption:
    @given(count=st.integers(min_value=3, max_value=6), vnodes=_VNODES,
           prefix=_PREFIXES)
    @settings(max_examples=30, deadline=None)
    def test_removing_one_endpoint_remaps_only_its_keys(
        self, count, vnodes, prefix
    ):
        labels = _labels(count)
        ring = HashRing(labels, vnodes=vnodes)
        keys = _keys(prefix)
        before = {key: ring.primary(key) for key in keys}
        victim = labels[count // 2]
        ring.remove(victim)
        remapped = 0
        for key in keys:
            after = ring.primary(key)
            if before[key] == victim:
                remapped += 1
                assert after != victim
            else:
                # The minimal-disruption property: surviving shards keep
                # every key they already owned.
                assert after == before[key]
        # The victim owned ~1/N of the keys, so only ~1/N remap — allow the
        # same slack as the balance bound.
        assert remapped <= 2.0 * _KEYS / count

    @given(count=st.integers(min_value=3, max_value=6), vnodes=_VNODES)
    @settings(max_examples=15, deadline=None)
    def test_remove_then_add_restores_the_layout(self, count, vnodes):
        labels = _labels(count)
        ring = HashRing(labels, vnodes=vnodes)
        keys = _keys("restore")[:150]
        before = {key: ring.successors(key, 2) for key in keys}
        ring.remove(labels[0])
        ring.add(labels[0])
        assert {key: ring.successors(key, 2) for key in keys} == before


class TestSuccessors:
    @given(count=_ENDPOINT_COUNTS, vnodes=_VNODES, prefix=_PREFIXES)
    @settings(max_examples=20, deadline=None)
    def test_successors_are_distinct_and_complete(self, count, vnodes, prefix):
        ring = HashRing(_labels(count), vnodes=vnodes)
        for key in _keys(prefix)[:50]:
            for want in range(1, count + 1):
                owners = ring.successors(key, want)
                assert len(owners) == want
                assert len(set(owners)) == want
            # Asking for more owners than shards yields every shard once.
            assert sorted(ring.successors(key, count + 3)) == sorted(
                _labels(count)
            )

    def test_replica_sets_nest_as_count_grows(self):
        # successors(k, r) must be a prefix of successors(k, r+1): growing
        # the replication factor only *adds* replicas, it never moves data.
        ring = HashRing(_labels(5), vnodes=64)
        for key in _keys("nest")[:100]:
            owners = ring.successors(key, 5)
            for want in range(1, 5):
                assert ring.successors(key, want) == owners[:want]


class TestRingEdges:
    def test_empty_ring_has_no_successors(self):
        ring = HashRing([])
        assert ring.successors(b"anything", 2) == []
        assert ring.primary(b"anything") is None

    def test_duplicate_endpoint_rejected(self):
        ring = HashRing(["a:1"])
        with pytest.raises(ValueError):
            ring.add("a:1")

    def test_unknown_endpoint_removal_rejected(self):
        with pytest.raises(ValueError):
            HashRing(["a:1"]).remove("b:2")

    def test_invalid_vnodes_rejected(self):
        with pytest.raises(ValueError):
            HashRing(["a:1"], vnodes=0)

    def test_single_endpoint_owns_everything(self):
        ring = HashRing(["solo:1"], vnodes=16)
        assert all(
            ring.primary(key) == "solo:1" for key in _keys("solo")[:50]
        )
