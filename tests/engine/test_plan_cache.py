"""Tests for the OPQ plan cache."""

import threading

import pytest

from repro.algorithms.opq import build_optimal_priority_queue
from repro.core.bins import TaskBinSet
from repro.engine.cache import PlanCache
from repro.engine.fingerprint import opq_key

TRIPLES = [(1, 0.9, 0.10), (2, 0.85, 0.18), (3, 0.8, 0.24)]


@pytest.fixture
def bins():
    return TaskBinSet.from_triples(TRIPLES, name="table1")


class TestCacheBasics:
    def test_miss_then_hit(self, bins):
        cache = PlanCache()
        first = cache.queue_for(bins, 0.95)
        second = cache.queue_for(bins, 0.95)
        assert first is second
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)
        assert stats.hit_rate == 0.5
        assert stats.build_seconds > 0.0

    def test_cached_queue_matches_cold_build(self, bins):
        cache = PlanCache()
        cached = cache.queue_for(bins, 0.95)
        cold = build_optimal_priority_queue(bins, 0.95)
        assert [(c.counts, c.lcm) for c in cached] == [
            (c.counts, c.lcm) for c in cold
        ]

    def test_distinct_thresholds_are_distinct_entries(self, bins):
        cache = PlanCache()
        cache.queue_for(bins, 0.9)
        cache.queue_for(bins, 0.95)
        assert len(cache) == 2
        assert cache.stats.misses == 2

    def test_equal_content_bin_sets_share_entries(self, bins):
        cache = PlanCache()
        clone = TaskBinSet.from_triples(TRIPLES, name="other-name")
        a = cache.queue_for(bins, 0.95)
        b = cache.queue_for(clone, 0.95)
        assert a is b
        assert cache.stats.hits == 1

    def test_clear_keeps_counters(self, bins):
        cache = PlanCache()
        cache.queue_for(bins, 0.9)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 1

    def test_contains_uses_opq_key(self, bins):
        cache = PlanCache()
        cache.queue_for(bins, 0.9)
        assert opq_key(bins, 0.9) in cache
        assert opq_key(bins, 0.95) not in cache


class TestLRUBound:
    def test_max_entries_evicts_least_recently_used(self, bins):
        cache = PlanCache(max_entries=2)
        cache.queue_for(bins, 0.90)
        cache.queue_for(bins, 0.95)
        cache.queue_for(bins, 0.90)   # refresh 0.90
        cache.queue_for(bins, 0.97)   # evicts 0.95
        assert opq_key(bins, 0.90) in cache
        assert opq_key(bins, 0.97) in cache
        assert opq_key(bins, 0.95) not in cache

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(max_entries=0)


class TestWarmAndExport:
    def test_warm_builds_each_once(self, bins):
        cache = PlanCache()
        cache.warm(bins, (0.9, 0.95, 0.9))
        stats = cache.stats
        assert stats.misses == 2
        assert stats.hits == 1

    def test_export_absorb_roundtrip(self, bins):
        parent = PlanCache()
        parent.warm(bins, (0.9, 0.95))
        child = PlanCache()
        child.absorb(parent.export_entries())
        assert len(child) == 2
        # Absorbed entries count as neither hit nor miss...
        assert child.stats.requests == 0
        # ...but serve requests as hits afterwards.
        child.queue_for(bins, 0.9)
        assert child.stats.hits == 1


class TestStatsDelta:
    def test_since_produces_batch_scoped_numbers(self, bins):
        cache = PlanCache()
        cache.queue_for(bins, 0.9)
        before = cache.stats
        cache.queue_for(bins, 0.9)
        cache.queue_for(bins, 0.95)
        delta = cache.stats.since(before)
        assert (delta.hits, delta.misses) == (1, 1)

    def test_idle_hit_rate_is_zero(self):
        assert PlanCache().stats.hit_rate == 0.0


class TestThreadSafety:
    def test_concurrent_requests_build_once(self, bins):
        cache = PlanCache()
        barrier = threading.Barrier(8)
        queues = []

        def request():
            barrier.wait()
            queues.append(cache.queue_for(bins, 0.97))

        threads = [threading.Thread(target=request) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert cache.stats.misses == 1
        assert cache.stats.hits == 7
        assert all(queue is queues[0] for queue in queues)


class TestInvalidate:
    def test_invalidate_drops_only_the_menu(self, bins):
        other = TaskBinSet.from_triples([(1, 0.8, 0.2), (2, 0.7, 0.3)])
        cache = PlanCache()
        cache.queue_for(bins, 0.95)
        cache.queue_for(bins, 0.90)
        cache.queue_for(other, 0.95)
        assert cache.invalidate(bins) == 2
        assert opq_key(bins, 0.95) not in cache
        assert opq_key(bins, 0.90) not in cache
        assert opq_key(other, 0.95) in cache

    def test_invalidate_covers_explicit_thresholds(self, bins):
        # Entries this process never built (no curve point — e.g. written by
        # another replica into a shared backend) still die when named.
        cache = PlanCache()
        foreign = PlanCache(backend=cache.backend)
        foreign.queue_for(bins, 0.97)
        assert cache.invalidate(bins, thresholds=[0.97]) == 1
        assert opq_key(bins, 0.97) not in cache

    def test_invalidate_counts_telemetry(self, bins):
        from repro.engine.telemetry import Telemetry

        telemetry = Telemetry()
        cache = PlanCache(telemetry=telemetry)
        cache.queue_for(bins, 0.95)
        cache.invalidate(bins)
        assert telemetry.counter("cache.invalidations") == 1

    def test_invalidate_is_idempotent(self, bins):
        cache = PlanCache()
        cache.queue_for(bins, 0.95)
        assert cache.invalidate(bins, thresholds=[0.95]) == 1
        assert cache.invalidate(bins, thresholds=[0.95]) == 0

    def test_deleteless_backend_is_tolerated(self, bins):
        class LegacyBackend:
            def __init__(self):
                self.entries = {}
            def get(self, key):
                return self.entries.get(key)
            def put(self, key, queue):
                self.entries[key] = queue
            def clear(self):
                self.entries.clear()
            def __len__(self):
                return len(self.entries)
            def __contains__(self, key):
                return key in self.entries

        cache = PlanCache(backend=LegacyBackend())
        cache.queue_for(bins, 0.95)
        assert cache.invalidate(bins) == 0
        assert opq_key(bins, 0.95) in cache

    def test_invalidate_removes_curve_donors(self, bins):
        # After invalidation the menu has no plan curve left: a build at a
        # nearby threshold is a cold build, not a seeded one.
        cache = PlanCache()
        cache.queue_for(bins, 0.95)
        assert cache.seed_for(bins, 0.94) is not None
        cache.invalidate(bins)
        assert cache.seed_for(bins, 0.94) is None

    def test_new_epoch_entries_survive_old_epoch_invalidation(self, bins):
        cache = PlanCache()
        recalibrated = bins.next_epoch()
        cache.queue_for(bins, 0.95)
        cache.queue_for(recalibrated, 0.95)
        cache.invalidate(bins, thresholds=[0.95])
        assert opq_key(bins, 0.95) not in cache
        assert opq_key(recalibrated, 0.95) in cache
        assert cache.seed_for(recalibrated, 0.95) is not None
