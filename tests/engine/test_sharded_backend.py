"""Tests for the sharded plan-cache backend.

Covers placement and replication against real in-process cache servers, the
storage contract behind :class:`~repro.engine.cache.PlanCache`, read repair
of lagging replicas, spec parsing for ``sharded://`` in
:func:`~repro.engine.backends.open_backend`, and the per-shard telemetry
surfaced through ``extra_metrics``.  The kill-a-shard chaos scenarios live
in ``tests/engine/test_backend_faults.py`` next to the other fault
injection.
"""

import pytest

from repro.algorithms.opq import build_optimal_priority_queue
from repro.core.bins import TaskBinSet
from repro.engine.backends import (
    BackendSpecError,
    CacheBackend,
    MemoryBackend,
    ShardedBackend,
    TieredBackend,
    open_backend,
)
from repro.engine.backends.server import CacheServerThread
from repro.engine.cache import PlanCache
from repro.engine.fingerprint import opq_key
from repro.engine.telemetry import Telemetry

TRIPLES = [(1, 0.9, 0.10), (2, 0.85, 0.18), (3, 0.8, 0.24)]
THRESHOLDS = (0.90, 0.93, 0.95, 0.97)


@pytest.fixture
def bins():
    return TaskBinSet.from_triples(TRIPLES, name="table1")


@pytest.fixture
def fleet():
    servers = [CacheServerThread() for _ in range(3)]
    try:
        yield servers
    finally:
        for server in servers:
            server.stop()


def endpoints(servers):
    return [(server.host, server.port) for server in servers]


def build(bins, threshold):
    return build_optimal_priority_queue(bins, threshold)


class TestPlacement:
    def test_every_entry_lands_on_replica_count_shards(self, bins, fleet):
        backend = ShardedBackend(endpoints(fleet), replicas=2)
        for threshold in THRESHOLDS:
            backend.put(opq_key(bins, threshold), build(bins, threshold))
        for threshold in THRESHOLDS:
            key = opq_key(bins, threshold)
            owners = backend.owners(key)
            assert len(owners) == 2
            holders = [
                label for label, shard in backend.shards.items() if key in shard
            ]
            assert sorted(holders) == sorted(owners)
        # Replicated copies across the fleet: 4 keys x 2 replicas.
        total = sum(
            shard.server_stats()["keys"] for shard in backend.shards.values()
        )
        assert total == len(THRESHOLDS) * 2
        # The distinct-key estimate divides the replication factor back out.
        assert len(backend) == len(THRESHOLDS)
        backend.close()

    def test_two_clients_compute_identical_placement(self, bins, fleet):
        first = ShardedBackend(endpoints(fleet), replicas=2)
        second = ShardedBackend(list(reversed(endpoints(fleet))), replicas=2)
        for threshold in THRESHOLDS:
            key = opq_key(bins, threshold)
            assert first.owners(key) == second.owners(key)
        first.close()
        second.close()

    def test_replicas_clamped_to_shard_count(self, fleet):
        backend = ShardedBackend(endpoints(fleet)[:2], replicas=5)
        assert backend.replicas == 2
        backend.close()

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ShardedBackend([])
        with pytest.raises(ValueError):
            ShardedBackend([("h", 1)], replicas=0)
        with pytest.raises(ValueError):
            ShardedBackend([("h", 1), ("h", 1)])


class TestStorageContract:
    def test_round_trip_and_protocol(self, bins, fleet):
        backend = ShardedBackend(endpoints(fleet), replicas=2)
        assert isinstance(backend, CacheBackend)
        assert backend.persistent
        assert backend.concurrent_safe
        key = opq_key(bins, 0.95)
        assert backend.get(key) is None
        assert backend.misses == 1
        queue = build(bins, 0.95)
        backend.put(key, queue)
        restored = backend.get(key)
        assert restored is not None
        assert [(c.counts, c.lcm) for c in restored] == [
            (c.counts, c.lcm) for c in queue
        ]
        assert key in backend
        backend.close()

    def test_merge_clear_and_snapshot(self, bins, fleet):
        backend = ShardedBackend(endpoints(fleet), replicas=2)
        backend.merge(
            {opq_key(bins, t): build(bins, t) for t in (0.9, 0.95)}
        )
        assert len(backend) == 2
        # Workers reach the shards themselves; snapshots ship nothing.
        assert backend.snapshot() == {}
        backend.clear()
        assert len(backend) == 0
        backend.close()

    def test_read_repair_restores_a_cold_replica(self, bins, fleet):
        backend = ShardedBackend(endpoints(fleet), replicas=2)
        key = opq_key(bins, 0.95)
        backend.put(key, build(bins, 0.95))
        # Empty one replica behind the client's back (a restart without
        # --persist): the next read must repair it.
        primary, replica = backend.owners(key)
        probe = backend.shards[primary]
        wiped = next(s for s in fleet if f"{s.host}:{s.port}" == primary)
        wiped.server._entries.clear()
        wiped.server._bytes_stored = 0
        assert backend.get(key) is not None
        assert backend.failovers == 1     # the replica carried the read
        assert backend.rebalances == 1    # ...and the primary was refilled
        assert key in probe
        backend.close()


class TestShardedSpecs:
    def test_sharded_spec_round_trips(self, fleet):
        spec = "sharded://" + ",".join(
            f"{host}:{port}" for host, port in endpoints(fleet)
        )
        backend = open_backend(spec)
        assert isinstance(backend, ShardedBackend)
        assert backend.replicas == 2
        assert len(backend.shards) == 3
        backend.close()

    def test_sharded_spec_options(self, fleet):
        host, port = endpoints(fleet)[0]
        backend = open_backend(
            f"sharded://{host}:{port}?replicas=1&vnodes=32&timeout=0.25&pool=3"
        )
        assert backend.replicas == 1
        assert backend.ring.vnodes == 32
        shard = next(iter(backend.shards.values()))
        assert shard.timeout == 0.25
        assert shard._pool._size == 3
        backend.close()

    def test_tiered_over_sharded_spec(self, fleet):
        far = ",".join(f"{host}:{port}" for host, port in endpoints(fleet))
        backend = open_backend(f"tiered:memory:16+sharded://{far}")
        assert isinstance(backend, TieredBackend)
        assert isinstance(backend.local, MemoryBackend)
        assert isinstance(backend.remote, ShardedBackend)
        assert backend.concurrent_safe
        backend.close()

    @pytest.mark.parametrize("spec", [
        "sharded://",                          # no endpoints
        "sharded://hostonly",                  # no port
        "sharded://h:1,peer",                  # one endpoint malformed
        "sharded://h:99999",                   # invalid port
        "sharded://h:1?replicas=two",          # bad option value
        "sharded://h:1?bogus=1",               # unknown option
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(BackendSpecError):
            open_backend(spec)

    def test_telemetry_forwarded_to_every_shard(self, fleet):
        telemetry = Telemetry()
        spec = "sharded://" + ",".join(
            f"{host}:{port}" for host, port in endpoints(fleet)
        )
        backend = open_backend(spec, telemetry=telemetry)
        assert backend.telemetry is telemetry
        assert all(
            shard.telemetry is telemetry for shard in backend.shards.values()
        )
        backend.close()


class TestTelemetryAndMetrics:
    def test_per_shard_hit_counters(self, bins, fleet):
        telemetry = Telemetry()
        backend = ShardedBackend(
            endpoints(fleet), replicas=2, telemetry=telemetry
        )
        for threshold in THRESHOLDS:
            backend.put(opq_key(bins, threshold), build(bins, threshold))
            assert backend.get(opq_key(bins, threshold)) is not None
        snapshot = telemetry.snapshot()
        assert snapshot["sharded_cache.hits"] == len(THRESHOLDS)
        per_shard = [
            value for name, value in snapshot.items()
            if name.startswith("sharded_cache.shard.") and name.endswith(".hits")
        ]
        assert sum(per_shard) == len(THRESHOLDS)
        assert sum(backend.shard_hits.values()) == len(THRESHOLDS)
        backend.close()

    def test_extra_metrics_report_per_shard_gauges(self, bins, fleet):
        backend = ShardedBackend(endpoints(fleet), replicas=2)
        backend.put(opq_key(bins, 0.95), build(bins, 0.95))
        metrics = backend.extra_metrics()
        assert metrics["sharded_cache.shards"] == 3.0
        assert metrics["sharded_cache.shards_up"] == 3.0
        assert metrics["sharded_cache.replicas"] == 2.0
        key_gauges = [
            value for name, value in metrics.items()
            if name.endswith(".server_keys")
        ]
        assert len(key_gauges) == 3
        assert sum(key_gauges) == 2.0  # one entry, two replicas
        backend.close()

    def test_plan_cache_over_sharded_fleet(self, bins, fleet):
        telemetry = Telemetry()
        cache = PlanCache(
            backend=ShardedBackend(endpoints(fleet), replicas=2),
            telemetry=telemetry,
        )
        cache.queue_for(bins, 0.95)
        cache.queue_for(bins, 0.95)
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)
        assert cache.persistent
        assert cache.backend_metrics()["sharded_cache.shards_up"] == 3.0

        # A second cache against the same fleet starts warm.
        warm = PlanCache(backend=ShardedBackend(endpoints(fleet), replicas=2))
        warm.queue_for(bins, 0.95)
        assert (warm.stats.hits, warm.stats.misses) == (1, 0)
        warm.close()
        cache.close()


class TestShardedDelete:
    def test_delete_reaches_every_replica(self, bins, fleet):
        backend = ShardedBackend(endpoints(fleet), replicas=2)
        key = opq_key(bins, 0.95)
        backend.put(key, build(bins, 0.95))
        holders = [
            label for label, shard in backend.shards.items() if key in shard
        ]
        assert len(holders) == 2
        assert backend.delete(key) is True
        assert all(key not in shard for shard in backend.shards.values())
        assert backend.get(key) is None
        backend.close()

    def test_delete_missing_is_false(self, bins, fleet):
        backend = ShardedBackend(endpoints(fleet), replicas=2)
        assert backend.delete(opq_key(bins, 0.9)) is False
        backend.close()

    def test_delete_survives_a_dead_replica(self, bins, fleet):
        backend = ShardedBackend(endpoints(fleet), replicas=2)
        key = opq_key(bins, 0.95)
        backend.put(key, build(bins, 0.95))
        owners = backend.owners(key)
        # Kill one owner: the delete still succeeds on the surviving replica
        # (fail-open), and the client keeps serving.
        dead = next(s for s in fleet if f"{s.host}:{s.port}" == owners[0])
        dead.stop()
        assert backend.delete(key) is True
        alive = [
            shard for label, shard in backend.shards.items()
            if label != owners[0]
        ]
        assert all(key not in shard for shard in alive)
        backend.close()
