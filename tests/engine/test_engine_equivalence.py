"""Equivalence: the engine must change nothing but the wall-clock.

Batch-planned results must be byte-for-byte identical to solving each problem
individually with a cold solver — through the cache-hit path, the thread
executor and the process executor alike.  Plans are compared via their
canonical JSON serialisation, which captures every posting, bin and task id.
"""

import json

import pytest

from repro.algorithms.registry import create_solver
from repro.core.problem import SladeProblem
from repro.datasets.jelly import jelly_bin_set
from repro.datasets.smic import smic_bin_set
from repro.datasets.thresholds import normal_thresholds
from repro.engine import BatchPlanner
from repro.io.serialization import plan_to_dict


def plan_bytes(plan) -> bytes:
    """Canonical byte serialisation of a decomposition plan."""
    return json.dumps(plan_to_dict(plan), sort_keys=True).encode("utf-8")


def homogeneous_mix():
    """Instances sharing menus/thresholds (cache hits guaranteed)."""
    jelly = jelly_bin_set(12)
    smic = smic_bin_set(8)
    return [
        SladeProblem.homogeneous(30, 0.9, jelly, name="j-30"),
        SladeProblem.homogeneous(47, 0.9, jelly, name="j-47"),
        SladeProblem.homogeneous(64, 0.95, jelly, name="j-64"),
        SladeProblem.homogeneous(30, 0.9, jelly, name="j-30-again"),
        SladeProblem.homogeneous(25, 0.9, smic, name="s-25"),
        SladeProblem.homogeneous(42, 0.95, smic, name="s-42"),
    ]


def heterogeneous_mix():
    jelly = jelly_bin_set(10)
    return [
        SladeProblem.heterogeneous(
            normal_thresholds(40, mu=0.9, sigma=0.03, seed=seed),
            jelly,
            name=f"h-{seed}",
        )
        for seed in range(3)
    ]


def cold_plan_bytes(problems, solver):
    return [plan_bytes(create_solver(solver).solve(p).plan) for p in problems]


class TestSerialEquivalence:
    def test_homogeneous_cache_hits_do_not_change_plans(self):
        problems = homogeneous_mix()
        batch = BatchPlanner().solve_many(problems, solver="opq")
        assert batch.stats.cache_hits > 0  # the path under test
        assert [
            plan_bytes(item.result.plan) for item in batch
        ] == cold_plan_bytes(problems, "opq")

    def test_heterogeneous_group_reuse_does_not_change_plans(self):
        problems = heterogeneous_mix()
        batch = BatchPlanner().solve_many(problems, solver="opq-extended")
        assert batch.stats.cache_hits > 0
        assert [
            plan_bytes(item.result.plan) for item in batch
        ] == cold_plan_bytes(problems, "opq-extended")

    def test_single_solve_through_cache_equals_cold(self):
        problem = homogeneous_mix()[0]
        planner = BatchPlanner()
        planner.solve(problem, "opq")           # prime the cache
        warm = planner.solve(problem, "opq")    # cache-hit path
        cold = create_solver("opq").solve(problem)
        assert plan_bytes(warm.plan) == plan_bytes(cold.plan)


@pytest.mark.parametrize("executor", ["thread", "process"])
class TestParallelEquivalence:
    def test_homogeneous_parallel_plans_identical(self, executor):
        problems = homogeneous_mix()
        planner = BatchPlanner(executor=executor, max_workers=3)
        batch = planner.solve_many(problems, solver="opq")
        assert [item.index for item in batch] == list(range(len(problems)))
        assert [
            plan_bytes(item.result.plan) for item in batch
        ] == cold_plan_bytes(problems, "opq")

    def test_heterogeneous_parallel_plans_identical(self, executor):
        problems = heterogeneous_mix()
        planner = BatchPlanner(executor=executor, max_workers=2)
        batch = planner.solve_many(problems, solver="opq-extended")
        assert [
            plan_bytes(item.result.plan) for item in batch
        ] == cold_plan_bytes(problems, "opq-extended")


class TestProcessPathDetails:
    def test_process_workers_report_cache_hits(self):
        problems = homogeneous_mix()
        planner = BatchPlanner(executor="process", max_workers=2)
        batch = planner.solve_many(problems, solver="opq")
        # The parent pre-warms the 4 distinct (menu, threshold) queues and
        # every worker request is then a hit against the shipped entries.
        assert batch.stats.cache_misses == 4
        assert batch.stats.cache_hits >= len(problems)

    def test_non_cacheable_solver_through_process_pool(self):
        problems = homogeneous_mix()[:2]
        planner = BatchPlanner(executor="process", max_workers=2)
        batch = planner.solve_many(problems, solver="greedy")
        assert [
            plan_bytes(item.result.plan) for item in batch
        ] == cold_plan_bytes(problems, "greedy")
