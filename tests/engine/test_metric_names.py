"""The shared metric-name inventory: convention, consistency, and coverage.

``repro.engine.metric_names`` is the single source of truth the SLD004
lint rule and the ``/metrics`` surface both key on.  These tests pin the
naming convention, keep the counter/series/gauge sets disjoint, and prove
that every name an exercised service stack actually records is registered
— so the inventory cannot silently drift away from the code.
"""

from __future__ import annotations

import re

from repro.engine import metric_names
from repro.service import ServiceConfig, SladeService, SolveRequest

#: Must match repro.lint.rules.sld004.NAME_RE.
NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")

#: Suffixes Telemetry.snapshot() derives from one observed series.
_SERIES_SUFFIXES = ("count", "total", "min", "max", "last", "mean", "bucket")


class TestInventoryShape:
    def test_every_name_matches_the_convention(self):
        for name in metric_names.ALL_STATIC:
            assert NAME_RE.match(name), name
        for prefix in metric_names.DYNAMIC_PREFIXES:
            assert prefix.endswith(".")
            assert NAME_RE.match(prefix + "x"), prefix

    def test_sets_are_disjoint(self):
        assert not metric_names.COUNTERS & metric_names.SERIES
        assert not metric_names.COUNTERS & metric_names.GAUGES
        assert not metric_names.SERIES & metric_names.GAUGES

    def test_is_known_respects_kinds(self):
        assert metric_names.is_known("cache.hits", "counter")
        assert not metric_names.is_known("cache.hits", "series")
        assert metric_names.is_known("planner.batch_size", "series")
        assert metric_names.is_known("cache.entries", "gauge")
        assert metric_names.is_known("http.responses.503", "counter")
        assert not metric_names.is_known("http.responses.503", "series")
        assert not metric_names.is_known("nope.nothing", "any")

    def test_dynamic_match_covers_fstring_literal_prefixes(self):
        # SLD004 checks the literal prefix of an f-string, which may stop
        # short of the full registered prefix ("http.responses." vs the
        # f-string "http.responses.{status}" whose prefix is the whole
        # registered string; "sharded_cache.shard.{i}.hits" stops inside).
        assert metric_names.matches_dynamic("http.responses.")
        assert metric_names.matches_dynamic("sharded_cache.shard.")
        assert not metric_names.matches_dynamic("unrelated.")
        assert not metric_names.matches_dynamic("")


def _is_registered(key: str) -> bool:
    if key in metric_names.ALL_STATIC:
        return True
    if metric_names.matches_dynamic(key):
        return True
    # Series appear in snapshots with derived suffixes (count/mean/...).
    for series in metric_names.SERIES:
        if key.startswith(series + "."):
            suffix = key[len(series) + 1 :]
            if suffix.split(".")[0] in _SERIES_SUFFIXES:
                return True
    return False


class TestExercisedStackIsCovered:
    def test_service_stack_records_only_registered_names(
        self, example4_problem
    ):
        with SladeService(ServiceConfig()) as service:
            service.solve(SolveRequest(problem=example4_problem))
            service.solve(SolveRequest(problem=example4_problem))
            snapshot = service.telemetry.snapshot()
        assert snapshot, "exercised stack recorded nothing"
        unregistered = sorted(
            key for key in snapshot if not _is_registered(key)
        )
        assert unregistered == [], unregistered
