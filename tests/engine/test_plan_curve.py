"""Cross-threshold plan-curve reuse and the partial-hit accounting fix.

The plan cache keeps an in-process *plan curve* per bin-menu fingerprint:
the thresholds whose complete frontiers it has seen.  A cold build for a new
threshold on a known menu is warm-started from the nearest curve point
(``seed_for``), counted under ``cache.curve_seeds``, and must produce a
queue byte-identical to an unseeded build.  Separately, ``peek`` answering
with an *incomplete* frontier must count ``cache.partial_hits`` — not
``cache.hits`` — so a refine-then-publish request is no longer double
counted.
"""

import pytest

from repro.algorithms.opq import build_optimal_priority_queue
from repro.algorithms.opq_vec import CORE_PYTHON
from repro.core.bins import TaskBinSet
from repro.engine.backends import MemoryBackend
from repro.engine.cache import PlanCache
from repro.engine.telemetry import Telemetry

TRIPLES = [(1, 0.9, 0.10), (2, 0.85, 0.18), (3, 0.8, 0.24)]


@pytest.fixture
def bins():
    return TaskBinSet.from_triples(TRIPLES, name="table1")


def frontier_bytes(queue):
    return [
        (c.counts, c.lcm, c.unit_cost.hex(), c.residual.hex()) for c in queue
    ]


class TestPartialHitAccounting:
    def test_incomplete_peek_counts_partial_not_hit(self, bins):
        telemetry = Telemetry()
        cache = PlanCache(telemetry=telemetry)
        truncated = build_optimal_priority_queue(bins, 0.95)
        truncated.complete = False
        assert cache.publish(bins, 0.95, truncated)

        assert cache.peek(bins, 0.95) is truncated
        stats = cache.stats
        assert stats.partial_hits == 1
        assert stats.hits == 0
        assert telemetry.counter("cache.partial_hits") == 1
        assert telemetry.counter("cache.hits") == 0

    def test_complete_peek_still_counts_a_hit(self, bins):
        cache = PlanCache()
        cache.queue_for(bins, 0.95)
        assert cache.peek(bins, 0.95) is not None
        stats = cache.stats
        assert (stats.hits, stats.partial_hits) == (1, 0)

    def test_since_subtracts_the_new_counters(self, bins):
        cache = PlanCache()
        truncated = build_optimal_priority_queue(bins, 0.95)
        truncated.complete = False
        cache.publish(bins, 0.95, truncated)
        cache.peek(bins, 0.95)
        before = cache.stats
        cache.peek(bins, 0.95)
        delta = cache.stats.since(before)
        assert delta.partial_hits == 1


class TestCurveSeeding:
    def test_second_threshold_build_is_seeded(self, bins):
        telemetry = Telemetry()
        cache = PlanCache(telemetry=telemetry)
        cache.queue_for(bins, 0.97)
        cache.queue_for(bins, 0.9)
        stats = cache.stats
        assert stats.misses == 2
        assert stats.curve_seeds == 1
        assert telemetry.counter("cache.curve_seeds") == 1

    def test_seeded_build_matches_an_unseeded_cache(self, bins):
        warm_cache = PlanCache()
        warm_cache.queue_for(bins, 0.97)
        seeded = warm_cache.queue_for(bins, 0.9)
        cold = PlanCache().queue_for(bins, 0.9)
        assert frontier_bytes(seeded) == frontier_bytes(cold)

    def test_first_build_on_a_menu_is_not_seeded(self, bins):
        cache = PlanCache()
        cache.queue_for(bins, 0.9)
        assert cache.stats.curve_seeds == 0

    def test_seed_for_prefers_the_nearest_donor_at_or_above(self, bins):
        cache = PlanCache()
        cache.queue_for(bins, 0.9)
        high = cache.queue_for(bins, 0.97)
        seed = cache.seed_for(bins, 0.93)
        assert seed is not None
        assert frontier_bytes_list(seed) == frontier_bytes(high)

    def test_seed_for_falls_back_to_a_lower_donor(self, bins):
        cache = PlanCache()
        low = cache.queue_for(bins, 0.9)
        seed = cache.seed_for(bins, 0.95)
        assert seed is not None
        assert frontier_bytes_list(seed) == frontier_bytes(low)

    def test_seed_for_unknown_menu_returns_none(self, bins):
        cache = PlanCache()
        cache.queue_for(bins, 0.9)
        other = TaskBinSet.from_triples([(1, 0.8, 0.2)], name="other")
        assert cache.seed_for(other, 0.9) is None

    def test_stale_curve_points_are_dropped(self, bins):
        cache = PlanCache()
        cache.queue_for(bins, 0.97)
        cache.clear()  # the backend entry is gone; the curve point is stale
        assert cache.seed_for(bins, 0.9) is None
        # The dead point was pruned: a rebuilt entry at another threshold
        # is found without tripping over the stale one again.
        cache.queue_for(bins, 0.9)
        assert cache.seed_for(bins, 0.95) is not None

    def test_incomplete_queues_never_join_the_curve(self, bins):
        cache = PlanCache()
        truncated = build_optimal_priority_queue(bins, 0.97)
        truncated.complete = False
        cache.publish(bins, 0.97, truncated)
        assert cache.seed_for(bins, 0.9) is None

    def test_seeding_probe_does_not_refresh_lru_recency(self, bins):
        backend = MemoryBackend(max_entries=2)
        cache = PlanCache(backend=backend)
        oldest = cache.queue_for(bins, 0.9)
        cache.queue_for(bins, 0.95)
        # This miss probes 0.9/0.95 as donors; the probe must not promote
        # them, so the LRU still evicts the oldest entry, not the newest.
        cache.queue_for(bins, 0.97)
        assert cache.peek(bins, 0.9) is None
        assert backend.evictions == 1
        assert oldest is not None

    def test_explicit_core_is_validated_and_used(self, bins):
        with pytest.raises(ValueError, match="unknown OPQ core"):
            PlanCache(opq_core="bogus")
        cache = PlanCache(opq_core=CORE_PYTHON)
        queue = cache.queue_for(bins, 0.95)
        assert frontier_bytes(queue) == frontier_bytes(
            build_optimal_priority_queue(bins, 0.95)
        )


def frontier_bytes_list(elements):
    return [
        (c.counts, c.lcm, c.unit_cost.hex(), c.residual.hex())
        for c in elements
    ]
