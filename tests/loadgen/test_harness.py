"""The load-harness contract: determinism, open-loop honesty, end-to-end runs.

Three layers of pinning:

* :func:`repro.loadgen.workload.generate_schedule` is a pure function of the
  spec — same seed, same schedule, byte for byte;
* the runner is **open-loop**: scheduled arrivals fire on time no matter how
  slow the server is, and queueing delay lands in the recorded latency
  (coordinated omission cannot hide it);
* a real :class:`HttpSladeServer` run produces a well-formed report, and
  per-tenant quota overrides keep one tenant's 429s out of another tenant's
  error budget.
"""

import asyncio
import threading

import pytest

from repro.loadgen import (
    TenantClass,
    WorkloadError,
    WorkloadSpec,
    build_profile,
    generate_schedule,
    run_load_test,
)
from repro.loadgen.workload import ScheduledRequest
from repro.service.client import TransportError
from repro.service.transport.admission import AdmissionController
from repro.service.transport.server import HttpSladeServer

BINS = [[1, 0.9, 0.10], [2, 0.85, 0.18], [3, 0.8, 0.24]]


def tiny_spec(**overrides):
    """A fast two-class mix: small solves, pinned rates, one tenant each."""
    defaults = dict(duration_seconds=1.0, seed=11)
    defaults.update(overrides)
    return WorkloadSpec(
        classes=(
            TenantClass(
                name="free", requests_per_second=25.0, n_range=(10, 20),
                thresholds="constant", mu=0.9, keys=2, zipf_exponent=0.0,
            ),
            TenantClass(
                name="paid", requests_per_second=25.0, n_range=(10, 20),
                thresholds="constant", mu=0.92, keys=2, zipf_exponent=0.0,
            ),
        ),
        **defaults,
    )


def synthetic_schedule(count, spacing=0.01, tenant_class="synthetic"):
    """A hand-built schedule for runner-only tests (no workload generator)."""
    return [
        ScheduledRequest(
            at=index * spacing,
            tenant_class=tenant_class,
            tenant=f"{tenant_class}-0",
            key=0,
            payload={
                "kind": "solve_request",
                "version": 1,
                "request_id": f"{tenant_class}-{index}",
                "tenant": f"{tenant_class}-0",
                "n": 10,
                "threshold": 0.9,
                "bins": BINS,
            },
        )
        for index in range(count)
    ]


class FakeReply:
    def __init__(self, status, payload):
        self.status = status
        self.payload = payload


class FakeClient:
    """An in-memory client: fixed service time, scripted outcomes, a log."""

    def __init__(self, delay=0.0, outcomes=None, events=None):
        self.delay = delay
        self.outcomes = outcomes or {}
        self.events = events if events is not None else []

    async def solve(self, payload, include_plan=None):
        loop = asyncio.get_running_loop()
        request_id = payload["request_id"]
        self.events.append(("start", loop.time(), request_id))
        if self.delay:
            await asyncio.sleep(self.delay)
        self.events.append(("done", loop.time(), request_id))
        outcome = self.outcomes.get(request_id, "ok")
        if outcome == "transport":
            raise TransportError("scripted connection failure")
        if outcome == "ok":
            return FakeReply(200, {"ok": True, "cache": "miss"})
        if outcome == "hit":
            return FakeReply(200, {"ok": True, "cache": "hit"})
        if outcome == "solve_failure":
            return FakeReply(200, {"ok": False, "error": {"type": "X"}})
        return FakeReply(int(outcome), {"ok": False})

    async def close(self):
        pass


class ServerHandle:
    """Run one :class:`HttpSladeServer` inside a dedicated event-loop thread."""

    def __init__(self, **server_kwargs):
        self._server_kwargs = server_kwargs
        self._ready = threading.Event()
        self._stop = None
        self._loop = None
        self._error = None
        self.server = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        try:
            asyncio.run(self._main())
        except BaseException as exc:
            self._error = exc
            self._ready.set()

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.server = HttpSladeServer(**self._server_kwargs)
        await self.server.start("127.0.0.1", 0)
        self._ready.set()
        await self._stop.wait()
        await self.server.close()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=10), "server failed to start"
        if self._error is not None:
            raise self._error
        return self

    def __exit__(self, *_exc_info):
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
            self._thread.join(timeout=30)
            assert not self._thread.is_alive(), "server thread leaked"
        if self._error is not None:
            raise self._error

    @property
    def base_url(self):
        return self.server.base_url


class TestScheduleDeterminism:
    def test_same_seed_yields_identical_schedule(self):
        spec = build_profile("ci-short", duration_seconds=3.0)
        first = generate_schedule(spec)
        second = generate_schedule(spec)
        assert first == second
        assert len(first) > 50

    def test_different_seed_changes_schedule(self):
        spec = build_profile("ci-short", duration_seconds=3.0)
        baseline = generate_schedule(spec)
        reseeded = generate_schedule(spec.scaled(seed=spec.seed + 1))
        assert baseline != reseeded

    def test_schedule_sorted_and_inside_duration(self):
        spec = tiny_spec(duration_seconds=2.0)
        schedule = generate_schedule(spec)
        times = [request.at for request in schedule]
        assert times == sorted(times)
        assert all(0.0 <= at < 2.0 for at in times)

    def test_zipf_skew_concentrates_on_hot_keys(self):
        spec = WorkloadSpec(
            classes=(
                TenantClass(
                    name="skewed", requests_per_second=200.0,
                    keys=8, zipf_exponent=1.2,
                ),
            ),
            duration_seconds=3.0,
            seed=5,
        )
        counts = {}
        for request in generate_schedule(spec):
            counts[request.key] = counts.get(request.key, 0) + 1
        hottest = max(counts.values())
        # Rank-1 popularity under zipf(1.2) across 8 keys is ~41%.
        assert hottest > 0.25 * sum(counts.values())

    def test_tenant_names_follow_class(self):
        spec = tiny_spec()
        for request in generate_schedule(spec):
            assert request.tenant.startswith(request.tenant_class + "-")
            assert request.payload["tenant"] == request.tenant

    def test_invalid_specs_rejected(self):
        with pytest.raises(WorkloadError):
            TenantClass(name="bad", requests_per_second=-1.0)
        with pytest.raises(WorkloadError):
            TenantClass(name="bad", burst_fraction=1.0)
        with pytest.raises(WorkloadError):
            WorkloadSpec(classes=())
        with pytest.raises(WorkloadError):
            WorkloadSpec(
                classes=(TenantClass(name="dup"), TenantClass(name="dup"))
            )

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            build_profile("no-such-profile")


class TestOpenLoopRunner:
    def test_arrivals_fire_independent_of_response_times(self):
        """Every request starts before the *first* slow response completes."""
        events = []
        delay = 0.3
        schedule = synthetic_schedule(8, spacing=0.01)

        report = asyncio.run(run_load_test(
            schedule,
            clients=8,
            client_factory=lambda: FakeClient(delay=delay, events=events),
        ))
        starts = [at for kind, at, _ in events if kind == "start"]
        dones = [at for kind, at, _ in events if kind == "done"]
        assert len(starts) == len(schedule)
        assert max(starts) < min(dones), (
            "open-loop dispatch must not wait for responses"
        )
        # Closed-loop replay would take ~8 * 0.3s; open-loop overlaps them.
        assert report.wall_seconds < len(schedule) * delay / 2
        assert report.overall.ok == len(schedule)

    def test_queueing_delay_lands_in_latency(self):
        """With one connection, pool wait counts from the *scheduled* time."""
        delay = 0.05
        schedule = synthetic_schedule(5, spacing=0.0)
        report = asyncio.run(run_load_test(
            schedule,
            clients=1,
            client_factory=lambda: FakeClient(delay=delay),
        ))
        # The last request waited behind four 50 ms services before its own.
        assert report.overall.latency.maximum >= 4 * delay
        # Yet the service time itself stays ~delay: the gap is queueing.
        assert report.overall.as_dict(report.wall_seconds)[
            "mean_service_seconds"
        ] == pytest.approx(delay, rel=0.8)

    def test_outcome_classification_and_budgets(self):
        schedule = synthetic_schedule(6, spacing=0.0)
        outcomes = {
            "synthetic-0": "ok",
            "synthetic-1": "solve_failure",
            "synthetic-2": "429",
            "synthetic-3": "503",
            "synthetic-4": "transport",
            "synthetic-5": "400",
        }
        report = asyncio.run(run_load_test(
            schedule,
            clients=2,
            client_factory=lambda: FakeClient(outcomes=outcomes),
        ))
        stats = report.classes["synthetic"]
        assert stats.ok == 1
        assert stats.solve_failures == 1
        assert stats.rejected == 1
        assert stats.overloaded == 1
        assert stats.transport_errors == 1
        assert stats.other_errors == 1
        assert stats.attempted == 6
        # 429/503 are contractual backpressure, not errors.
        assert stats.error_budget == pytest.approx(3 / 6)
        assert stats.rejection_budget == pytest.approx(2 / 6)

    def test_warm_windows_track_cache_over_time(self):
        schedule = synthetic_schedule(4, spacing=0.6)  # seconds 0 and 1
        outcomes = {
            "synthetic-0": "ok",   # second 0: miss
            "synthetic-1": "hit",                      # second 0: hit
            "synthetic-2": "hit",                      # second 1: hit
            "synthetic-3": "hit",                      # second 1: hit
        }
        report = asyncio.run(run_load_test(
            schedule,
            clients=4,
            time_scale=0.05,  # windows key on *scheduled* seconds
            client_factory=lambda: FakeClient(outcomes=outcomes),
        ))
        windows = {w["second"]: w for w in report.warm_windows}
        assert windows[0]["warm_rate"] == pytest.approx(0.5)
        assert windows[1]["warm_rate"] == pytest.approx(1.0)
        assert report.overall.warm_rate == pytest.approx(3 / 4)

    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError):
            asyncio.run(run_load_test([], client_factory=FakeClient))
        with pytest.raises(ValueError):
            asyncio.run(run_load_test(
                synthetic_schedule(1), client_factory=FakeClient, clients=0,
            ))


class TestEndToEndHttp:
    def test_run_against_live_server_produces_wellformed_report(self):
        spec = tiny_spec(duration_seconds=1.2)
        schedule = generate_schedule(spec)
        with ServerHandle() as handle:
            report = asyncio.run(run_load_test(
                schedule, handle.base_url, clients=8,
                profile="tiny", seed=spec.seed,
            ))

        assert report.scheduled == len(schedule)
        overall = report.overall
        assert overall.attempted == report.scheduled
        assert overall.ok == report.scheduled
        assert overall.error_budget == 0.0
        assert overall.rejection_budget == 0.0
        # Two fingerprints per class: the plan cache must warm up.
        assert overall.cache_hits > 0
        assert overall.warm_rate > 0.5

        document = report.as_dict()
        assert document["kind"] == "loadtest_report"
        assert document["version"] == 1
        assert document["profile"] == "tiny"
        assert document["seed"] == spec.seed
        assert set(document["classes"]) == {"free", "paid"}
        for stats in [document["overall"], *document["classes"].values()]:
            for key in ("p50", "p99", "p999", "max"):
                assert stats["latency_seconds"][key] >= 0.0
            assert stats["ok"] + stats["solve_failures"] + stats["rejected"] \
                + stats["overloaded"] + stats["transport_errors"] \
                + stats["other_errors"] == stats["scheduled"]
        assert document["warm_windows"]
        for window in document["warm_windows"]:
            assert 0.0 <= window["warm_rate"] <= 1.0

        table = report.format_table()
        assert "free" in table and "paid" in table and "overall" in table

    def test_tenant_quota_rejections_do_not_bleed_across_classes(self):
        """The fairness contract, end to end over real admission control.

        ``free-0`` gets a 2 req/s bucket while ``paid-0`` rides the unlimited
        default; both offer ~25 req/s from the same shared burst.  The free
        tenant must see 429s — and every one of them must stay out of the
        paid tenant's books.
        """
        spec = tiny_spec(duration_seconds=1.2)
        schedule = generate_schedule(spec)
        admission = AdmissionController(tenant_limits={"free-0": (2.0, 2.0)})
        with ServerHandle(admission=admission) as handle:
            report = asyncio.run(run_load_test(
                schedule, handle.base_url, clients=8,
            ))

        free, paid = report.classes["free"], report.classes["paid"]
        assert free.rejected > 0
        assert free.rejection_budget > 0.5
        # Backpressure is contractual: not an error even for the free tier.
        assert free.error_budget == 0.0
        # The paid tenant never sees a rejection or an error.
        assert paid.rejected == 0 and paid.overloaded == 0
        assert paid.error_budget == 0.0 and paid.rejection_budget == 0.0
        assert paid.ok == paid.scheduled
        assert report.overall.rejected == free.rejected
