"""Property tests for the log-bucketed latency-percentile math.

The histogram's contract: for any sample set and any quantile, the reported
percentile is an *upper bound* of the exact percentile that is tight to one
bucket — the exact value lies in ``(previous bound, reported value]``.
Hypothesis drives arbitrary samples across the full bucket range (and past
it, into the overflow bucket) to pin that bound.
"""

import math
from bisect import bisect_left

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.telemetry import SeriesStats, log_bucket_bounds
from repro.loadgen.histogram import LATENCY_BUCKETS, LatencyHistogram


def exact_percentile(samples, q):
    """The rank-``ceil(q*n)`` order statistic (the textbook percentile)."""
    ordered = sorted(samples)
    rank = math.ceil(q * len(ordered))
    return ordered[rank - 1]


#: Latencies spanning below the first bound, the whole bucket range, and the
#: overflow region above the last bound.
latencies = st.floats(
    min_value=1e-5, max_value=500.0, allow_nan=False, allow_infinity=False
)
quantiles = st.one_of(
    st.sampled_from([0.5, 0.9, 0.99, 0.999, 1.0]),
    st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
)


class TestPercentileProperty:
    @given(samples=st.lists(latencies, min_size=1, max_size=200), q=quantiles)
    @settings(max_examples=200, deadline=None)
    def test_percentile_within_one_bucket_of_exact(self, samples, q):
        histogram = LatencyHistogram()
        for value in samples:
            histogram.record(value)
        reported = histogram.percentile(q)
        exact = exact_percentile(samples, q)

        # Upper-bound property: at least ceil(q*n) samples are <= reported.
        assert reported >= exact

        bounds = LATENCY_BUCKETS
        if exact > bounds[-1]:
            # Overflow rank: the histogram answers with the observed max.
            assert reported == max(samples)
        else:
            # Tightness: exact and reported fall in the same bucket, i.e.
            # the previous bound is a strict lower bound of the exact value.
            index = bisect_left(bounds, reported)
            assert bisect_left(bounds, exact) == index
            if index > 0:
                assert exact > bounds[index - 1]

    @given(samples=st.lists(latencies, min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_percentiles_are_monotone_in_q(self, samples):
        histogram = LatencyHistogram()
        for value in samples:
            histogram.record(value)
        values = [histogram.percentile(q) for q in (0.1, 0.5, 0.9, 0.99, 1.0)]
        assert values == sorted(values)

    @given(
        left=st.lists(latencies, min_size=1, max_size=50),
        right=st.lists(latencies, min_size=1, max_size=50),
        q=quantiles,
    )
    @settings(max_examples=100, deadline=None)
    def test_merge_equals_recording_everything_in_one(self, left, right, q):
        merged = LatencyHistogram()
        one, other = LatencyHistogram(), LatencyHistogram()
        for value in left:
            one.record(value)
            merged.record(value)
        for value in right:
            other.record(value)
            merged.record(value)
        one.merge(other)
        assert one.count == merged.count
        assert one.percentile(q) == merged.percentile(q)
        assert one.maximum == merged.maximum


class TestPercentileEdges:
    def test_empty_histogram_has_no_percentile(self):
        assert LatencyHistogram().percentile(0.99) is None
        summary = LatencyHistogram().summary()
        assert summary["count"] == 0 and summary["p99"] == 0.0

    def test_invalid_quantile_raises(self):
        histogram = LatencyHistogram()
        histogram.record(0.01)
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                histogram.percentile(bad)

    def test_unbucketed_series_has_no_percentile(self):
        series = SeriesStats()
        series.observe(1.0)
        assert series.percentile(0.5) is None

    def test_single_value_lands_in_its_bucket(self):
        histogram = LatencyHistogram()
        histogram.record(0.003)
        p50 = histogram.percentile(0.5)
        index = bisect_left(LATENCY_BUCKETS, 0.003)
        assert p50 == LATENCY_BUCKETS[index]

    def test_merge_rejects_different_bounds(self):
        one = LatencyHistogram()
        other = LatencyHistogram(bounds=log_bucket_bounds(0.001, 1.0))
        other.record(0.5)
        with pytest.raises(ValueError):
            one.merge(other)

    def test_summary_reports_headline_quantiles(self):
        histogram = LatencyHistogram()
        for value in [0.001] * 98 + [1.0, 2.0]:
            histogram.record(value)
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["p50"] <= summary["p99"] <= summary["p999"]
        assert summary["p99"] >= 1.0
        assert summary["max"] == 2.0


class TestLogBucketBounds:
    def test_bounds_are_geometric_and_cover_range(self):
        bounds = log_bucket_bounds(0.001, 10.0, factor=2.0)
        assert bounds[0] == 0.001
        assert bounds[-1] >= 10.0
        for previous, current in zip(bounds, bounds[1:]):
            assert current == pytest.approx(previous * 2.0)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            log_bucket_bounds(0.0, 1.0)
        with pytest.raises(ValueError):
            log_bucket_bounds(1.0, 0.5)
        with pytest.raises(ValueError):
            log_bucket_bounds(0.1, 1.0, factor=1.0)
